"""Rely and guarantee conditions as invariants over the global log.

In the paper (§3.2, Fig. 7) a layer interface is a tuple ``L[A] = (L, R,
G)``: the rely condition ``R`` specifies the set of *valid environment
contexts* and the guarantee condition ``G`` is an invariant the focused
participants' log must maintain.  Both are per-participant families of log
invariants ("these conditions are simply expressed as invariants over the
global log", §2).

The ``Compat`` rule (Fig. 9) requires implications between guarantees and
relies (``L[B].R(i) ⊆ L[A].G(i)``).  In Coq these are proved once and for
all; here implication is checked over a *log universe* — every log
produced while verifying either side, plus structured adversarial logs —
and the check is recorded in the resulting certificate (see DESIGN.md §4).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .log import Log


#: Per-invariant memo size bound.  Sibling runs of a bounded enumeration
#: share long log prefixes, so the same (invariant, log) query recurs
#: constantly; the memo is cleared wholesale when it fills.
_MEMO_LIMIT = 1 << 16


class LogInvariant:
    """A named predicate over logs.

    Supports conjunction (``&``) and implication checking over a finite
    universe of logs.  ``holds`` must be total: invariants never raise.

    ``holds`` may be memoized per log content (``memo=True``): invariants
    are pure predicates over immutable logs (the paper presents
    rely/guarantee conditions as "invariants over the global log"), and
    bounded enumerations re-check the same prefix logs across thousands
    of sibling runs.  Memoization is opt-in because hashing a log costs
    more than evaluating a trivial predicate (e.g. ``TRUE_INV``); the
    builders below enable it for the O(n) protocol walks where it pays.
    """

    def __init__(self, name: str, check: Callable[[Log], bool], memo: bool = False):
        self.name = name
        self._check = check
        self._memo: Optional[Dict[Log, bool]] = {} if memo else None

    def holds(self, log: Log) -> bool:
        memo = self._memo
        if memo is None or type(log) is not Log:  # unhashable raw sequences: no memo
            return bool(self._check(log))
        verdict = memo.get(log)
        if verdict is None:
            verdict = bool(self._check(log))
            if len(memo) >= _MEMO_LIMIT:
                memo.clear()
            memo[log] = verdict
        return verdict

    def __and__(self, other: "LogInvariant") -> "LogInvariant":
        return LogInvariant(
            f"({self.name} ∧ {other.name})",
            lambda log: self.holds(log) and other.holds(log),
        )

    def __or__(self, other: "LogInvariant") -> "LogInvariant":
        return LogInvariant(
            f"({self.name} ∨ {other.name})",
            lambda log: self.holds(log) or other.holds(log),
        )

    def implies_on(self, other: "LogInvariant", universe: Iterable[Log]) -> Tuple[bool, Optional[Log]]:
        """Check ``self ⊆ other`` over a finite universe of logs.

        Returns ``(True, None)`` if no counterexample was found, else
        ``(False, witness)``.
        """
        for log in universe:
            if self.holds(log) and not other.holds(log):
                return False, log
        return True, None

    def __repr__(self):
        return f"Inv({self.name})"


TRUE_INV = LogInvariant("true", lambda log: True)
FALSE_INV = LogInvariant("false", lambda log: False)


class Rely:
    """The rely condition: per-participant validity of environment events.

    ``conditions[i]`` constrains the events participant ``i`` may
    contribute when it is part of the environment.  Participants without
    an entry are unconstrained (``TRUE_INV``).  Extra structured fields
    capture the temporal conditions the paper imposes on environment
    contexts:

    * ``fairness_bound`` — the (hardware or software) scheduler is fair:
      any participant is scheduled within ``m`` environment steps (§4.1).
    * ``release_bound`` — definite action: a participant that acquired a
      lock releases it within ``n`` of its own steps (§2: "the held locks
      will eventually be released").
    """

    def __init__(
        self,
        conditions: Optional[Dict[int, LogInvariant]] = None,
        fairness_bound: Optional[int] = None,
        release_bound: Optional[int] = None,
    ):
        self.conditions: Dict[int, LogInvariant] = dict(conditions or {})
        self.fairness_bound = fairness_bound
        self.release_bound = release_bound

    def condition(self, tid: int) -> LogInvariant:
        return self.conditions.get(tid, TRUE_INV)

    def holds(self, log: Log) -> bool:
        """All per-participant conditions hold of the log."""
        return all(inv.holds(log) for inv in self.conditions.values())

    def intersect(self, other: "Rely") -> "Rely":
        """Pointwise conjunction — ``L[A∪B].R = L[A].R ∩ L[B].R`` (Compat)."""
        tids = set(self.conditions) | set(other.conditions)
        merged = {t: self.condition(t) & other.condition(t) for t in tids}
        return Rely(
            merged,
            fairness_bound=_min_opt(self.fairness_bound, other.fairness_bound),
            release_bound=_min_opt(self.release_bound, other.release_bound),
        )

    def __repr__(self):
        return f"Rely({sorted(self.conditions)}, fair≤{self.fairness_bound}, rel≤{self.release_bound})"


class Guarantee:
    """The guarantee condition: per-participant invariants on own events.

    ``events``, when given, declares the closed set of event names the
    focused participants may append; the static analysis pass checks
    every statically reachable emit site against it (rely/guarantee
    lint, rule REPRO-I203).  ``None`` means undeclared — the lint rule
    stays silent.
    """

    def __init__(
        self,
        conditions: Optional[Dict[int, LogInvariant]] = None,
        events: Optional[Iterable[str]] = None,
    ):
        self.conditions: Dict[int, LogInvariant] = dict(conditions or {})
        self.events: Optional[frozenset] = (
            None if events is None else frozenset(events)
        )

    def condition(self, tid: int) -> LogInvariant:
        return self.conditions.get(tid, TRUE_INV)

    def holds(self, log: Log, tid: int) -> bool:
        return self.condition(tid).holds(log)

    def union(self, other: "Guarantee") -> "Guarantee":
        """Pointwise union — ``L[A∪B].G = L[A].G ∪ L[B].G`` (Compat)."""
        tids = set(self.conditions) | set(other.conditions)
        merged = {}
        for t in tids:
            mine = self.conditions.get(t)
            theirs = other.conditions.get(t)
            if mine is None:
                merged[t] = theirs
            elif theirs is None:
                merged[t] = mine
            else:
                merged[t] = mine | theirs
        if self.events is None or other.events is None:
            events = None  # one side undeclared -> union is undeclared
        else:
            events = self.events | other.events
        return Guarantee(merged, events=events)

    def restrict(self, tids: Iterable[int]) -> "Guarantee":
        """``L[c].G|Ta`` — keep only the focused participants' guarantees."""
        wanted = set(tids)
        return Guarantee(
            {t: inv for t, inv in self.conditions.items() if t in wanted},
            events=self.events,
        )

    def __repr__(self):
        return f"Guar({sorted(self.conditions)})"


def _min_opt(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def check_compat(
    rely_a: Rely,
    guar_a: Guarantee,
    tids_a: Iterable[int],
    rely_b: Rely,
    guar_b: Guarantee,
    tids_b: Iterable[int],
    universe: Iterable[Log],
) -> List[str]:
    """Check the premises of the ``Compat`` rule over a log universe.

    ``∀i ∈ A, L[B].R(i) ⊆ L[A].G(i)`` and symmetrically.  Returns a list
    of failure descriptions (empty = compatible on the universe).
    """
    universe = list(universe)
    failures: List[str] = []
    for i in tids_a:
        ok, witness = rely_b.condition(i).implies_on(guar_a.condition(i), universe)
        if not ok:
            failures.append(
                f"L[B].R({i}) ⊄ L[A].G({i}); counterexample log: {witness!r}"
            )
    for i in tids_b:
        ok, witness = rely_a.condition(i).implies_on(guar_b.condition(i), universe)
        if not ok:
            failures.append(
                f"L[A].R({i}) ⊄ L[B].G({i}); counterexample log: {witness!r}"
            )
    return failures


# --- common invariant builders --------------------------------------------


def events_follow_protocol(
    tid: int,
    allowed: Callable[[Log, "Event"], bool],
    name: str = "protocol",
) -> LogInvariant:
    """Every event of ``tid`` is allowed given the log prefix before it.

    The standard shape of rely conditions like ``L'1[i].Rj``: "lock-related
    events generated by φj must follow φacq'[j] and φrel'[j]" (§2).
    """

    def check(log: Log) -> bool:
        prefix = []
        for event in log:
            if event.tid == tid and not allowed(Log(prefix), event):
                return False
            prefix.append(event)
        return True

    return LogInvariant(f"{name}[{tid}]", check, memo=True)


def release_within(tid: int, acquire: str, release: str, bound: int) -> LogInvariant:
    """Definite action: after ``tid.acquire``, ``tid.release`` appears
    within ``bound`` of ``tid``'s own subsequent events.

    This is the paper's "held locks will eventually be released" rely
    condition, made quantitative ("the distance between c'.acq and c'.rel
    in the log is less than some number n", §4.1).  A trailing acquire
    with fewer than ``bound`` own-events after it is allowed (the log may
    be a prefix of a longer run).
    """

    def check(log: Log) -> bool:
        own_events = [e for e in log if e.tid == tid]
        pending: Optional[int] = None
        for idx, event in enumerate(own_events):
            if event.name == acquire:
                if pending is not None:
                    return False
                pending = idx
            elif event.name == release:
                if pending is None:
                    return False
                pending = None
            if pending is not None and idx - pending > bound:
                return False
        return True

    return LogInvariant(f"release_within[{tid},{acquire}->{release}≤{bound}]", check, memo=True)


def scheduled_within(tid: int, bound: int) -> LogInvariant:
    """Fairness: ``tid`` gets a hardware-scheduling event at least once in
    every window of ``bound`` consecutive events."""

    def check(log: Log) -> bool:
        gap = 0
        for event in log:
            if event.is_sched() and event.tid == tid:
                gap = 0
            else:
                gap += 1
                if gap > bound:
                    return False
        return True

    return LogInvariant(f"fair[{tid}≤{bound}]", check, memo=True)
