"""Simulation relations over logs.

A certified layer ``L1 ⊢_R M : L2`` carries a simulation relation ``R``
between the logs of the two interfaces.  The paper's running example (§2)
defines ``R1`` "as mapping events ``i.acq`` to ``i.hold``, ``i.rel`` to
``i.inc_n`` and other lock-related events to empty ones" — i.e. a relation
is presented by

* a map from each *high-level* event to the sequence of low-level events
  that witness it (its linearization point), and
* a set of low-level event names that are pure implementation noise and
  are erased before comparison (the spinning ``get_n`` reads, the
  ``FAI_t`` fetches).

``relate_logs(l_low, l_high)`` holds when the low log, with noise erased
and scheduling events dropped, equals the eventwise image of the high
log.  This global-order comparison is exactly the paper's observation
that "the order of lock acquiring and the resulting shared state ... are
exactly the same" for the two logs of the example.

Relations compose (``R ∘ S``, used by ``Vcomp`` and ``Wk`` in Fig. 9) and
can map environment batches down (used by the simulation checker to build
the low-level environment witnessing a high-level one).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .events import Event
from .log import Log

EventMapping = Union[None, str, Callable[[Event], Tuple[Event, ...]]]


class SimRel:
    """Base class: identity behaviour, hooks for subclasses."""

    name = "id"

    # -- event-level structure ------------------------------------------------

    def map_event(self, event: Event) -> Tuple[Event, ...]:
        """The low-level witness sequence for a high-level event."""
        return (event,)

    def erases(self, event: Event) -> bool:
        """Whether a low-level event is implementation noise."""
        return False

    def relate_ret(self, ret_low: Any, ret_high: Any) -> bool:
        return ret_low == ret_high

    def concretize_event(self, event: Event) -> Tuple[Event, ...]:
        """A *plausible low-level trace* witnessing a high-level event.

        Used to lower environment batches: when the high-level
        environment performs ``2.acq``, the low-level run must observe a
        believable low-level implementation trace for participant 2
        (e.g. ``2.FAI_t • 2.hold``), not just the linearization event —
        otherwise low-level replay functions would see an impossible
        history.  Defaults to :meth:`map_event`.
        """
        return self.map_event(event)

    # -- derived log-level relation --------------------------------------------

    def map_events(self, events: Iterable[Event]) -> Tuple[Event, ...]:
        out: List[Event] = []
        for event in events:
            out.extend(self.map_event(event))
        return tuple(out)

    def concretize_events(self, events: Iterable[Event]) -> Tuple[Event, ...]:
        out: List[Event] = []
        for event in events:
            out.extend(self.concretize_event(event))
        return tuple(out)

    def concretize_batch(self, batch: Iterable[Event], log: Log) -> Tuple[Event, ...]:
        """Lower one environment batch, given the low log at delivery time.

        Stateful relations (e.g. the shared-queue relation, whose
        released values depend on the current queue contents) override
        this; the default ignores the log and maps eventwise.
        """
        return self.concretize_events(batch)

    def essential_low(self, log: Union[Log, Iterable[Event]]) -> Tuple[Event, ...]:
        return tuple(
            e for e in log if not e.is_sched() and not self.erases(e)
        )

    def relate_logs(self, log_low: Log, log_high: Log) -> bool:
        expected = self.map_events(e for e in log_high if not e.is_sched())
        return self.essential_low(log_low) == expected

    def explain(self, log_low: Log, log_high: Log) -> str:
        """A human-readable diff for failed relations (error messages)."""
        actual = self.essential_low(log_low)
        expected = self.map_events(e for e in log_high if not e.is_sched())
        return (
            f"relation {self.name} failed:\n"
            f"  low (essential): {[str(e) for e in actual]}\n"
            f"  map(high):       {[str(e) for e in expected]}"
        )

    def compose(self, later: "SimRel") -> "SimRel":
        """``self ∘ later``: self relates L1~L2, later relates L2~L3.

        The composed relation relates L1~L3: map a top-level event through
        ``later`` first, then each image event through ``self``; a low
        event is erased if ``self`` erases it.
        """
        return ComposedRel(self, later)

    def __repr__(self):
        return f"SimRel({self.name})"


class IdRel(SimRel):
    """The identity relation (the paper's ``id``): logs must be equal
    up to scheduling events."""

    name = "id"


ID_REL = IdRel()


class ComposedRel(SimRel):
    """``lower ∘ upper`` — relate the bottom log of ``lower`` with the top
    log of ``upper`` through the shared middle interface."""

    def __init__(self, lower: SimRel, upper: SimRel):
        self.lower = lower
        self.upper = upper
        self.name = f"({lower.name} ∘ {upper.name})"

    def map_event(self, event: Event) -> Tuple[Event, ...]:
        middle = self.upper.map_event(event)
        return self.lower.map_events(middle)

    def concretize_event(self, event: Event) -> Tuple[Event, ...]:
        middle = self.upper.concretize_event(event)
        return self.lower.concretize_events(middle)

    def erases(self, event: Event) -> bool:
        # A low event is noise if the lower relation erases it, or if the
        # lower relation passes it through and the upper one erases it.
        if self.lower.erases(event):
            return True
        if self.lower.map_event(event) == (event,):
            return self.upper.erases(event)
        return False

    def relate_ret(self, ret_low: Any, ret_high: Any) -> bool:
        # Return values are threaded unchanged through the middle layer in
        # all our relations; require agreement end to end.
        return self.lower.relate_ret(ret_low, ret_high) or self.upper.relate_ret(
            ret_low, ret_high
        )


class EventMapRel(SimRel):
    """A relation presented by an event map and an erasure set.

    ``mapping`` sends a high-level event *name* to

    * ``None`` — the high event has no low witness (rare; used when a
      high-level event is pure specification bookkeeping),
    * a ``str`` — rename: the low witness is the same event with the new
      name (the ``acq ↦ hold`` case; args and tid preserved, ret
      dropped), or
    * a callable ``Event -> tuple[Event, ...]`` — full control.

    Names absent from the mapping pass through unchanged.  ``erase`` is
    the set of low-level event names dropped before comparison.
    """

    def __init__(
        self,
        name: str,
        mapping: Optional[Dict[str, EventMapping]] = None,
        erase: Iterable[str] = (),
        ret_rel: Optional[Callable[[Any, Any], bool]] = None,
        concretize: Optional[Dict[str, EventMapping]] = None,
    ):
        self.name = name
        self.mapping: Dict[str, EventMapping] = dict(mapping or {})
        self.erase_names: Set[str] = set(erase)
        self._ret_rel = ret_rel
        self.concretization: Dict[str, EventMapping] = dict(
            concretize if concretize is not None else self.mapping
        )

    @staticmethod
    def _apply(table: Dict[str, EventMapping], event: Event) -> Tuple[Event, ...]:
        if event.name not in table:
            return (event,)
        target = table[event.name]
        if target is None:
            return ()
        if isinstance(target, str):
            return (Event(event.tid, target, event.args, None),)
        return tuple(target(event))

    def map_event(self, event: Event) -> Tuple[Event, ...]:
        return self._apply(self.mapping, event)

    def concretize_event(self, event: Event) -> Tuple[Event, ...]:
        return self._apply(self.concretization, event)

    def erases(self, event: Event) -> bool:
        return event.name in self.erase_names

    def relate_ret(self, ret_low: Any, ret_high: Any) -> bool:
        if self._ret_rel is not None:
            return self._ret_rel(ret_low, ret_high)
        return ret_low == ret_high


class ErasureRel(EventMapRel):
    """Erase a set of low-level event names, relate the rest by identity.

    The shape of most fun-lift relations: the low log has extra silent
    detail that simply disappears at the higher layer.
    """

    def __init__(self, name: str, erase: Iterable[str]):
        super().__init__(name, mapping={}, erase=erase)


def relate_with_rets(
    rel: SimRel, log_low: Log, log_high: Log, compare_rets: bool = True
) -> bool:
    """Relate logs, optionally also requiring recorded return values of
    corresponding essential events to agree.

    The default :meth:`SimRel.relate_logs` compares full events (including
    recorded rets); this helper allows checkers to relax ret comparison
    when a relation intentionally drops return values (rename mappings).
    """
    if compare_rets:
        return rel.relate_logs(log_low, log_high)
    strip = lambda events: tuple(
        Event(e.tid, e.name, e.args, None) for e in events
    )
    actual = strip(rel.essential_low(log_low))
    expected = strip(rel.map_events(e for e in log_high if not e.is_sched()))
    return actual == expected
