"""Execution contexts and the player protocol.

Everything that *runs* over a layer interface — a C function interpreted
by :mod:`repro.clight.semantics`, an assembly function, or a specification
strategy written directly in Python — is a **player**: a generator
function ``player(ctx, *args)`` that

* reads and appends to the global log through its :class:`ExecutionContext`,
* suspends by ``yield QUERY`` exactly at the paper's *query points*
  (§3.2: "the point just before executing shared primitives"), and
* returns its result via ``return`` (captured from ``StopIteration``).

The driver that resumes players decides what a query point means: under a
local (CPU-local / thread-local) interface the environment context is
asked for events (``E[A, l]``); under a whole-machine game the scheduler
picks which player runs next.  This single suspension mechanism is what
makes the same specification usable both as a local strategy and as a
participant in the global game, mirroring the paper's strategy semantics.

Critical state: after a successful ``pull``/``acq`` the player is *in
critical state* and must not lose control (§2, §3.2); players therefore
query through :meth:`ExecutionContext.query`, which yields nothing while
``critical > 0``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .errors import OutOfFuel, Stuck
from .events import Event
from .log import Log, LogBuffer


class Query:
    """The marker yielded by players at query points."""

    __slots__ = ()

    def __repr__(self):
        return "QUERY"


QUERY = Query()

#: Type alias (documentation only): a player is a generator function
#: ``(ctx, *args) -> Generator[Query, None, ret]``.
Player = Callable[..., Any]


class ExecutionContext:
    """Per-participant execution state threaded through a player.

    Attributes
    ----------
    interface:
        The layer interface the player runs over (an underlay: primitive
        calls resolve against it).
    tid:
        The participant id (CPU id or thread id) this player acts for.
    buffer:
        The shared mutable global log.
    priv:
        Private state: local variables of interpreted code, CPU-private
        memory, and local copies of pulled shared blocks.  Invisible to
        other participants (the paper's ``ρ``/``pm``).
    critical:
        Critical-section nesting depth; queries are suppressed while > 0.
    fuel:
        Remaining step budget; interpreters call :meth:`consume_fuel`.
    cycles:
        Simulated cycle counter (the §6 performance-evaluation cost
        model); incremented by the asm interpreter and by primitive-call
        overhead.
    """

    def __init__(
        self,
        interface,
        tid: int,
        buffer: LogBuffer,
        fuel: int = 10_000,
        priv: Optional[Dict[str, Any]] = None,
    ):
        self.interface = interface
        self.tid = tid
        self.buffer = buffer
        self.priv: Dict[str, Any] = priv if priv is not None else {}
        self.critical = 0
        self.fuel = fuel
        self.cycles = 0
        #: Completed query points so far (maintained by the drivers).
        self.queries = 0
        #: Index of the current scenario call (see
        #: :class:`repro.core.simulation.Scenario`); used by call-aware
        #: environment contexts to deliver witness batches at the right
        #: low-level query points.
        self.scenario_call = 0
        #: Fine-grained interleaving mode (the hardware machine ``Mx86``):
        #: every primitive call — even a silent private one — is a
        #: potential hardware-scheduling point, so ``call`` yields a query
        #: before private primitives too.  Layer machines leave this off;
        #: the multicore linking theorem (Thm 3.1) relates the two modes.
        self.fine_grained = False

    # -- log access ---------------------------------------------------------

    @property
    def log(self) -> Log:
        """An immutable snapshot of the current global log."""
        return self.buffer.snapshot()

    def emit(self, name: str, *args, ret: Any = None) -> Event:
        """Append the event ``tid.name(args)↓ret`` to the global log."""
        event = Event(self.tid, name, tuple(args), ret)
        self.buffer.append(event)
        return event

    # -- query points ---------------------------------------------------------

    def query(self):
        """Yield a query point unless in critical state.

        Specifications and interpreters write ``yield from ctx.query()``
        just before a shared-primitive step.  In critical state this is a
        no-op: the machine never asks the environment while holding
        ownership (§3.2, Fig. 8: ``σpush`` does not query E).
        """
        if self.critical == 0:
            yield QUERY

    def enter_critical(self) -> None:
        self.critical += 1

    def exit_critical(self) -> None:
        if self.critical == 0:
            raise Stuck(f"participant {self.tid} exited critical state twice")
        self.critical -= 1

    # -- primitive calls ------------------------------------------------------

    def call(self, name: str, *args):
        """Call an underlay primitive (a generator; use ``yield from``).

        Resolves ``name`` in the underlay interface, runs its
        specification, and maintains critical-state bookkeeping according
        to the primitive's declaration.
        """
        prim = self.interface.lookup(name)
        self.consume_fuel()
        self.cycles += prim.cycle_cost
        if self.fine_grained and self.critical == 0:
            yield QUERY
        ret = yield from prim.spec(self, *args)
        if prim.enters_critical:
            self.critical += 1
        if prim.exits_critical:
            self.exit_critical()
        return ret

    # -- resource accounting ---------------------------------------------------

    def consume_fuel(self, amount: int = 1) -> None:
        self.fuel -= amount
        if self.fuel < 0:
            raise OutOfFuel(f"participant {self.tid} ran out of fuel")

    def charge_cycles(self, amount: int) -> None:
        self.cycles += amount


def run_player(gen) -> Any:
    """Run a player generator that must not query (sequential helper).

    Used for private primitives and for fully-critical code paths; raises
    :class:`Stuck` if the player unexpectedly reaches a query point.
    """
    try:
        marker = next(gen)
    except StopIteration as stop:
        return stop.value
    raise Stuck(f"unexpected query point: {marker!r}")
