"""Contextual refinement and the soundness theorem (Thm 2.2).

``L'[D] ⊢_R M : L[D]  ⟹  ∀P, [[P ⊕ M]]_{L'[D]} ⊑_R [[P]]_{L[D]}``

A certified layer behaves "like a certified compiler, converting any safe
client program P running on top of L into one that has the same behavior
but runs on top of L'" (§2).  The checker computes both behaviour sets by
exhaustive bounded scheduler enumeration (:func:`enumerate_game_logs`)
and verifies that every completed low-level log has an R-related
completed high-level log — the termination-sensitive refinement the paper
insists on (a diverging or stuck low-level run with no high-level
counterpart is a failure, not a vacuous success).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import obs_enabled, span
from ..obs.coverage import CoverageBuilder, merge_coverage_maps
from ..obs.forensics import MAX_COUNTEREXAMPLES, build_counterexample
from ..obs.metrics import MetricsWindow, inc
from ..obs.profile import (
    RedundancyBuilder,
    merge_redundancy,
    obligation_entry,
    profile_enabled,
    profile_span,
)
from ..parallel.cache import (
    cache_enabled,
    cached_certificate,
    cached_obligation_payload,
    merge_incremental_records,
)
from ..parallel.pool import get_jobs, parallel_map
from ..reduce import (
    RG_SIMPLIFY,
    current_axes,
    reduce_active,
    reduction_collector,
    resolve_reduce,
)
from ..reduce.laws import MERGE_COMPATIBLE
from ..reduce.stats import merge_reduction_maps, tally_law
from .certificate import Certificate, CertifiedLayer, stamp_provenance
from .errors import ComposeError
from .interface import LayerInterface
from .log import Log
from .machine import (
    GameResult,
    ScriptScheduler,
    enumerate_game_logs,
    run_game,
    seq_player,
)
from .module import Module, link
from .relation import SimRel

ClientProgram = Dict[int, Sequence[Tuple[str, Tuple[Any, ...]]]]
"""A client program ``P``: per participant, a sequence of primitive calls
(the shape of Fig. 3's ``T1(){ foo(); }  T2(){ foo(); }``)."""


def behaviors_of(
    interface: LayerInterface,
    client: ClientProgram,
    module: Optional[Module] = None,
    fuel: int = 10_000,
    max_rounds: int = 64,
    max_runs: int = 100_000,
    coverage: Optional[CoverageBuilder] = None,
    jobs: Optional[int] = None,
    redundancy: Optional[RedundancyBuilder] = None,
) -> List[GameResult]:
    """``[[P ⊕ M]]_{L[D]}`` (or ``[[P]]_{L[D]}`` when ``module`` is None).

    Links the module's functions into the interface, instantiates each
    participant's call sequence as a player, and enumerates every bounded
    scheduling of the game (splitting the scheduler tree across ``jobs``
    workers when asked — see :func:`enumerate_game_logs`).
    """
    machine = link(interface, module) if module and len(module) else interface
    players = {
        tid: (seq_player(list(calls)), ())
        for tid, calls in client.items()
    }
    with span(
        "behaviors_of",
        interface=interface.name,
        linked=module.name if module and len(module) else None,
        participants=len(players),
    ):
        results = enumerate_game_logs(
            machine, players, fuel=fuel, max_rounds=max_rounds,
            max_runs=max_runs, coverage=coverage, jobs=jobs,
            redundancy=redundancy,
        )
    inc("contextual.behaviors_enumerated", len(results))
    return results


def game_rerun(
    interface: LayerInterface,
    client: ClientProgram,
    module: Optional[Module] = None,
    fuel: int = 10_000,
    max_rounds: int = 64,
) -> Callable[[Sequence[int]], GameResult]:
    """A forensic replay callable: one game under one decision script.

    The returned ``rerun(schedule)`` re-executes exactly what
    :func:`behaviors_of` runs for that scheduling prefix.  It raises
    :class:`~repro.core.machine.NeedChoice` when the script is too short
    to denote a complete run — the shrinker treats that as "does not
    reproduce".
    """
    machine = link(interface, module) if module and len(module) else interface
    players = {
        tid: (seq_player(list(calls)), ())
        for tid, calls in client.items()
    }

    def rerun(schedule):
        return run_game(
            machine, players, ScriptScheduler(schedule),
            fuel=fuel, max_rounds=max_rounds,
        )

    return rerun


def check_refinement(
    low_results: Iterable[GameResult],
    high_results: Iterable[GameResult],
    relation: SimRel,
    cert: Certificate,
    label: str = "",
    require_progress: bool = True,
    rerun_low: Optional[Callable[[Sequence[int]], GameResult]] = None,
) -> None:
    """Check ``behaviors_low ⊑_R behaviors_high`` and record obligations.

    For every completed low-level log there must exist a completed
    high-level log related by ``R`` (scheduling events are erased on both
    sides before relating, since the two layers run under different
    schedulers — §2's "this interleaving can be captured by a higher-level
    scheduler").  With ``require_progress`` every low run must also have
    completed — stuck or diverging runs fail the termination-sensitive
    property.

    ``rerun_low`` (see :func:`game_rerun`) enables forensics: failed
    obligations get a delta-debugged :class:`Counterexample` whose
    scheduler-decision script is minimized while the same failure —
    no-progress, or no R-related high log — keeps reproducing.

    With ``rg-simplify`` active, witness searches are shared between low
    runs whose sched-erased logs are identical (the
    *merge-compatible-obligations* law): the relation is a function of
    the erased log, so the first search's verdict stands for all of
    them.  Obligations and counters are unchanged — only the repeated
    ``relate_logs`` scans are skipped.
    """
    low_results = list(low_results)
    high_logs = [r.log.without_sched() for r in high_results if r.ok]
    matched = 0
    captured = 0
    memo_witnesses = RG_SIMPLIFY in current_axes()
    witness_memo: Dict[Log, Optional[Log]] = {}
    _MISS = object()

    def capture(failure, obligation, status, result):
        nonlocal captured
        if captured >= MAX_COUNTEREXAMPLES:
            return None
        captured += 1
        still_fails = None
        artifacts = None
        if rerun_low is not None:
            def still_fails(schedule):
                replay = rerun_low(schedule)
                if failure == "progress":
                    return not replay.ok
                if not replay.ok:
                    return False
                replay_log = replay.log.without_sched()
                return not any(
                    relation.relate_logs(replay_log, hl) for hl in high_logs
                )

            def artifacts(schedule):
                replay = rerun_low(schedule)
                if failure == "progress":
                    return {
                        "log": tuple(replay.log),
                        "status": replay.stuck or "diverged at round bound",
                    }
                return {
                    "log": tuple(replay.log.without_sched()),
                    "status": (
                        f"no R-related high log among {len(high_logs)}"
                    ),
                }

        counterexample = build_counterexample(
            kind="refinement",
            judgment=cert.judgment,
            obligation=obligation,
            status=status,
            schedule=result.schedule,
            still_fails=still_fails,
            artifacts=artifacts,
            schedule_kind="sched_decisions",
            log=tuple(
                result.log if failure == "progress"
                else result.log.without_sched()
            ),
        )
        return {"counterexample": counterexample}

    for result in low_results:
        if not result.ok:
            if require_progress:
                desc = f"low run completes {label}[sched={result.schedule}]"
                details = result.stuck or "diverged at round bound"
                cert.add(
                    desc, False, details,
                    evidence=capture("progress", desc, details, result),
                )
            continue
        low_log = result.log.without_sched()
        witness = witness_memo.get(low_log, _MISS) if memo_witnesses else _MISS
        if witness is not _MISS:
            tally_law(MERGE_COMPATIBLE)
        else:
            witness = next(
                (hl for hl in high_logs if relation.relate_logs(low_log, hl)),
                None,
            )
            if memo_witnesses:
                witness_memo[low_log] = witness
        if witness is None:
            inc("contextual.low_logs_unmatched")
            desc = f"low log has high witness {label}[sched={result.schedule}]"
            details = f"unmatched: {low_log!r}"
            cert.add(
                desc, False, details,
                evidence=capture("unmatched", desc, details, result),
            )
        else:
            matched += 1
            inc("contextual.low_logs_matched")
    cert.add(
        f"refinement {label}: {matched} low logs matched against "
        f"{len(high_logs)} high logs",
        True,
    )


def check_soundness(
    layer: CertifiedLayer,
    clients: Sequence[ClientProgram],
    fuel: int = 10_000,
    max_rounds: int = 64,
    max_runs: int = 100_000,
    require_progress: bool = True,
    jobs: Optional[int] = None,
    reduce: Optional[Any] = None,
) -> Certificate:
    """Thm 2.2: contextual refinement for a family of client programs.

    For each client ``P``: compute ``[[P ⊕ M]]_{L'[D]}`` and
    ``[[P]]_{L[D]}`` and check the former refines the latter through the
    layer's relation.  Clients must only exercise the certified focused
    set (participants outside ``layer.focused`` would not be covered by
    the premise).

    With ``jobs > 1`` (or ``REPRO_JOBS`` set) clients are checked in
    worker processes and their obligations merged in client order; with
    a single client the workers split the scheduler tree instead.  The
    whole judgment is memoized in the content-addressed certificate
    cache when enabled — keyed by the layer's interfaces, module,
    relation, premise certificate, the clients, the bounds and the
    active reduction axes.

    ``reduce`` selects the state-space reduction axes (see
    :mod:`repro.reduce`): ``None`` defers to ``REPRO_REDUCE`` (default
    all on), ``"off"`` restores the seed's exhaustive exploration.
    """
    n_jobs = get_jobs(jobs)
    axes = resolve_reduce(reduce)
    for index, client in enumerate(clients):
        extra = set(client) - set(layer.focused)
        if extra:
            raise ComposeError(
                f"client {index} uses uncertified participants {sorted(extra)}"
            )

    client_key = None
    if cache_enabled():
        from ..analysis.slices import client_obligation_key

        def client_key(client: ClientProgram) -> Any:
            return client_obligation_key(
                underlay=layer.underlay,
                module=layer.module,
                overlay=layer.overlay,
                relation=layer.relation,
                client=client,
                fuel=fuel,
                max_rounds=max_rounds,
                max_runs=max_runs,
                require_progress=require_progress,
                axes=axes,
            )

    def compute() -> Certificate:
        with reduce_active(axes):
            return _check_soundness_uncached(
                layer, clients, fuel, max_rounds, max_runs, require_progress,
                n_jobs, obligation_key=client_key,
            )

    return cached_certificate(
        "Soundness",
        (
            layer.underlay, layer.module, layer.overlay, layer.relation,
            tuple(sorted(layer.focused)), layer.certificate,
            tuple(clients), fuel, max_rounds, max_runs, require_progress,
            ("reduce", tuple(sorted(axes))),
        ),
        compute,
        jobs=n_jobs,
    )


def _check_soundness_uncached(
    layer: CertifiedLayer,
    clients: Sequence[ClientProgram],
    fuel: int,
    max_rounds: int,
    max_runs: int,
    require_progress: bool,
    n_jobs: int,
    obligation_key: Optional[Any] = None,
) -> Certificate:
    started = time.perf_counter()
    window = MetricsWindow()
    cert = Certificate(
        judgment=f"∀P, [[P ⊕ {layer.module.name}]]_{layer.underlay.name} "
        f"⊑_{layer.relation.name} [[P]]_{layer.overlay.name}",
        rule="Soundness",
        bounds={
            "clients": len(clients),
            "max_rounds": max_rounds,
            "fuel": fuel,
        },
        children=[layer.certificate],
    )
    behaviors = {"low": 0, "high": 0}
    coverage_maps: List[Dict[str, Any]] = []
    # With several clients the fan-out is per client; with one client the
    # workers are spent inside the scheduler-tree exploration instead.
    inner_jobs = n_jobs if len(clients) == 1 else 1

    def check_client(item) -> Dict[str, Any]:
        index, client = item
        track_cov = obs_enabled()
        prof = profile_enabled()
        t_obligation = time.perf_counter() if prof else 0.0
        red_low, red_high = (
            (
                RedundancyBuilder("machine.schedules"),
                RedundancyBuilder("machine.schedules"),
            )
            if prof else (None, None)
        )
        with span("soundness.client", client=index), \
                reduction_collector(current_axes()) as red_stats, \
                profile_span(f"obligation[P{index}]"):
            cov_low, cov_high = (
                (
                    CoverageBuilder(
                        "machine.schedules", budget=max_runs,
                        depth_bound=max_rounds,
                    ),
                    CoverageBuilder(
                        "machine.schedules", budget=max_runs,
                        depth_bound=max_rounds,
                    ),
                )
                if track_cov else (None, None)
            )
            low = behaviors_of(
                layer.underlay, client, layer.module,
                fuel=fuel, max_rounds=max_rounds, max_runs=max_runs,
                coverage=cov_low, jobs=inner_jobs, redundancy=red_low,
            )
            high = behaviors_of(
                layer.overlay, client, None,
                fuel=fuel, max_rounds=max_rounds, max_runs=max_runs,
                coverage=cov_high, jobs=inner_jobs, redundancy=red_high,
            )
            maps: List[Dict[str, Any]] = []
            if track_cov:
                maps.append({"machine.schedules": cov_low.record()})
                maps.append({"machine.schedules": cov_high.record()})
            # Obligations land in a shadow certificate with the same
            # judgment (counterexamples embed it); the parent splices
            # them into the real certificate in client order.
            shadow = Certificate(judgment=cert.judgment, rule=cert.rule)
            check_refinement(
                low, high, layer.relation, shadow,
                label=f"P{index}", require_progress=require_progress,
                rerun_low=game_rerun(
                    layer.underlay, client, layer.module,
                    fuel=fuel, max_rounds=max_rounds,
                ),
            )
        output = {
            "obligations": shadow.obligations,
            "low": len(low),
            "high": len(high),
            "logs": tuple(r.log for r in low) + tuple(r.log for r in high),
            "coverage": maps,
            "reduction": red_stats.as_dict() or None,
        }
        if prof:
            output["profile"] = {
                "obligation": f"P{index}",
                "wall_us": int((time.perf_counter() - t_obligation) * 1e6),
                "states": red_low.explored + red_high.explored,
                "redundancy": merge_redundancy(
                    [red_low.record(), red_high.record()]
                ),
            }
        return output

    def checked_client(item) -> Dict[str, Any]:
        _index, client = item
        key = obligation_key(client) if obligation_key is not None else None
        return cached_obligation_payload(
            "soundness-client", key, lambda: check_client(item),
            ("obligations", "low", "high", "logs"),
        )

    with span("check_soundness", module=layer.module.name, clients=len(clients)):
        outputs = parallel_map(
            checked_client, list(enumerate(clients)),
            jobs=n_jobs if len(clients) > 1 else 1,
        )
        profile_entries: List[Dict[str, Any]] = []
        redundancy_records: List[Dict[str, Any]] = []
        reduction_records: List[Optional[Dict[str, Any]]] = []
        incremental_notes: List[Any] = []
        for output in outputs:
            reduction_records.append(output.get("reduction"))
            incremental_notes.append(output.get("incremental"))
            cert.obligations.extend(output["obligations"])
            behaviors["low"] += output["low"]
            behaviors["high"] += output["high"]
            cert.log_universe = cert.log_universe + output["logs"]
            coverage_maps.extend(output.get("coverage") or [])
            client_profile = output.get("profile")
            if client_profile is not None:
                redundancy_records.append(client_profile["redundancy"])
                profile_entries.append(client_profile)
    extra_prov: Dict[str, Any] = dict(
        clients=len(clients),
        low_behaviors=behaviors["low"],
        high_behaviors=behaviors["high"],
        workers=n_jobs,
    )
    coverage = merge_coverage_maps(coverage_maps)
    if coverage:
        extra_prov["coverage"] = coverage
    reduction = merge_reduction_maps(reduction_records)
    if reduction:
        extra_prov["reduction"] = reduction
    incremental = merge_incremental_records(incremental_notes)
    if incremental:
        extra_prov["incremental"] = incremental
    if profile_entries:
        extra_prov["profile"] = {
            "redundancy": merge_redundancy(redundancy_records),
            "obligations": [obligation_entry(e) for e in profile_entries],
        }
    stamp_provenance(
        cert, time.perf_counter() - started, window, **extra_prov,
    )
    return cert
