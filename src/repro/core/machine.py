"""The abstract layer machine: local runs and whole-machine games.

Two execution modes, mirroring §2 of the paper:

* **Local execution** (:func:`run_local`) — the machine focuses on one
  participant; everything else is an environment context.  "Since the
  environmental executions (including the interleavings) are all
  encapsulated into the environment context, ``L[i]`` is actually a
  sequential-like (or local) interface parameterized over E."

* **Game execution** (:func:`run_game`) — every participant is focused
  and a scheduler strategy "acts as a judge of the game" picking who
  moves at each round.  The behaviour of the whole layer machine
  ``[[·]]_{L[D]}`` is the set of logs generated under all schedulers
  (:func:`enumerate_game_logs` explores that set exhaustively to a
  bounded number of scheduling decisions).

Players suspend only at query points (see :mod:`repro.core.context`), so a
scheduling decision is made exactly when the running player would next
interact with shared state — the paper's observation that instruction and
private-primitive transitions need not be interleaved observably (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..obs import obs_enabled, span
from ..obs.coverage import SAMPLED, CoverageBuilder
from ..obs.heartbeat import heartbeat
from ..obs.metrics import inc
from ..obs.profile import RedundancyBuilder, profile_enabled, state_fingerprint
from ..parallel.partition import CHUNKS_PER_WORKER, chunk_evenly
from ..parallel.pool import get_jobs, parallel_map
from ..reduce import (
    MACHINE_AXES,
    RG_SIMPLIFY,
    STATIC_INDEP,
    ReductionStats,
    contribute,
    current_axes,
)
from ..reduce.dpor import DeferRun, PruneRun, ReducingScheduler, TranspositionTable
from ..reduce.laws import FRAME, STRENGTHEN_GUARANTEE, frame_allows_skip
from ..reduce.stats import tally_law
from .context import QUERY, ExecutionContext
from .environment import EnvContext, NullEnv
from .errors import OutOfFuel, Stuck
from .events import hw_sched
from .interface import LayerInterface
from .log import Log, LogBuffer


# --- players ---------------------------------------------------------------


def call_player(name: str, *args):
    """A player that makes a single primitive call and returns its result.

    Running a primitive's own specification as a player is how we execute
    a strategy ``φ`` in isolation (the ``LκM_{L[i]}`` of §2).
    """

    def player(ctx):
        ret = yield from ctx.call(name, *args)
        return ret

    player.__name__ = f"call_{name}"
    # Static call footprint for the dependency analysis: the call target
    # is a loop-free literal here, so declare it (bytecode alone cannot
    # resolve a dynamic ``ctx.call(name)``).  Function attributes do not
    # participate in canonical fingerprints.
    player.__static_calls__ = (name,)
    return player


def seq_player(calls: Sequence[Tuple[str, Tuple[Any, ...]]]):
    """A player performing a fixed sequence of primitive calls.

    This is the shape of the client programs ``P`` in Fig. 3 (``T1(){
    foo(); }``); returns the list of return values.
    """

    def player(ctx):
        rets = []
        for name, args in calls:
            ret = yield from ctx.call(name, *args)
            rets.append(ret)
        return rets

    player.__name__ = "seq_" + "_".join(name for name, _ in calls)
    player.__static_calls__ = tuple(name for name, _ in calls)
    return player


# --- local execution ---------------------------------------------------------


@dataclass
class LocalRun:
    """Outcome of a local run: final log, return value, status."""

    log: Log
    ret: Any
    finished: bool
    stuck: Optional[str]
    cycles: int
    queries: int
    guar_ok: bool
    ctx: ExecutionContext

    @property
    def ok(self) -> bool:
        return self.finished and self.stuck is None and self.guar_ok


def run_local(
    interface: LayerInterface,
    tid: int,
    player: Callable,
    args: Tuple[Any, ...] = (),
    env: Optional[EnvContext] = None,
    fuel: int = 10_000,
    init_log: Optional[Iterable] = None,
    priv: Optional[Dict[str, Any]] = None,
    check_guar: bool = True,
) -> LocalRun:
    """Run one player over ``interface[tid]`` under an environment context.

    The guarantee condition of the interface is checked on the log after
    every resumption segment; a violation does not abort the run but is
    reported through ``guar_ok`` (verifiers turn it into a failure).
    """
    env = env if env is not None else NullEnv()
    buffer = LogBuffer(interface.init_log if init_log is None else init_log)
    base_priv = interface.init_priv(tid)
    if priv:
        base_priv.update(priv)
    ctx = ExecutionContext(interface, tid, buffer, fuel=fuel, priv=base_priv)
    gen = player(ctx, *args)

    queries = 0
    guar_ok = True
    # rg-simplify laws: a prefix-closed guarantee invariant is checked
    # once on the last snapshot instead of at every query point
    # (strengthen-guarantee — a violation of any earlier prefix
    # persists into the last snapshot, so the verdict is identical);
    # an invariant with a declared footprint is re-checked only when
    # the log delta since the last check touches it (frame).
    guar_inv = interface.guar.condition(tid) if check_guar else None
    rg_active = check_guar and RG_SIMPLIFY in current_axes()
    guar_once = rg_active and getattr(guar_inv, "prefix_closed", False)
    guar_frame = (
        rg_active and not guar_once
        and getattr(guar_inv, "footprint", None) is not None
    )
    stepwise_skipped = 0
    last_query_len = 0
    last_checked_len = len(buffer)
    ret: Any = None
    finished = False
    stuck: Optional[str] = None
    try:
        while True:
            try:
                marker = next(gen)
            except StopIteration as stop:
                ret = stop.value
                finished = True
                break
            if marker is not QUERY:  # pragma: no cover - protocol violation
                raise Stuck(f"player yielded non-query value {marker!r}")
            if guar_once:
                stepwise_skipped += 1
                last_query_len = len(buffer)
            elif check_guar:
                snapshot = buffer.snapshot()
                if guar_frame and frame_allows_skip(
                    guar_inv, snapshot.events[last_checked_len:]
                ):
                    stepwise_skipped += 1
                    tally_law(FRAME)
                else:
                    last_checked_len = len(snapshot)
                    if not interface.guar.holds(snapshot, tid):
                        guar_ok = False
            queries += 1
            ctx.queries = queries
            ctx.consume_fuel()
            env.advance(buffer, tid, ctx)
    except Stuck as err:
        stuck = err.reason
    if guar_once:
        # The last checked snapshot of the stepwise scheme: the final
        # log when the run finished, else the snapshot at the last
        # query point (the seed checks nothing after a stuck segment).
        if finished:
            if not interface.guar.holds(buffer.snapshot(), tid):
                guar_ok = False
        elif queries:
            stepwise_skipped -= 1
            prefix = Log(buffer.snapshot().events[:last_query_len])
            if not interface.guar.holds(prefix, tid):
                guar_ok = False
        if stepwise_skipped > 0:
            tally_law(STRENGTHEN_GUARANTEE, stepwise_skipped)
    elif check_guar and finished and not interface.guar.holds(
        buffer.snapshot(), tid
    ):
        guar_ok = False
    if obs_enabled():
        inc("machine.local_runs")
        inc("machine.local_queries", queries)
        if stuck is not None:
            inc("machine.local_runs_stuck")
    return LocalRun(
        log=buffer.snapshot(),
        ret=ret,
        finished=finished,
        stuck=stuck,
        cycles=ctx.cycles,
        queries=queries,
        guar_ok=guar_ok,
        ctx=ctx,
    )


# --- game execution -----------------------------------------------------------


class NeedChoice(Exception):
    """Raised internally when a scripted scheduler runs out of decisions."""

    def __init__(self, ready: FrozenSet[int]):
        super().__init__(f"scheduling decision needed among {sorted(ready)}")
        self.ready = ready


class GameScheduler:
    """A scheduler strategy for whole-machine games (the paper's φ0)."""

    def pick(self, log: Log, ready: FrozenSet[int]) -> int:
        raise NotImplementedError

    def fresh(self) -> "GameScheduler":
        raise NotImplementedError


class RoundRobinScheduler(GameScheduler):
    """Cycle fairly through a fixed participant order."""

    def __init__(self, order: Sequence[int]):
        self.order = list(order)
        self.cursor = 0

    def pick(self, log: Log, ready: FrozenSet[int]) -> int:
        for _ in range(len(self.order)):
            tid = self.order[self.cursor % len(self.order)]
            self.cursor += 1
            if tid in ready:
                return tid
        return min(ready)

    def fresh(self) -> "RoundRobinScheduler":
        return RoundRobinScheduler(self.order)


class ScriptScheduler(GameScheduler):
    """Follow an explicit decision sequence; branch when it runs out.

    When the script is exhausted: if only one participant is ready it is
    chosen silently (no real decision exists), otherwise
    :class:`NeedChoice` propagates the ready set so the exhaustive
    enumerator can extend the script.
    """

    def __init__(self, script: Sequence[int]):
        self.script = tuple(script)
        self.cursor = 0

    def pick(self, log: Log, ready: FrozenSet[int]) -> int:
        if self.cursor < len(self.script):
            tid = self.script[self.cursor]
            self.cursor += 1
            if tid not in ready:
                # A stale decision (participant already finished): treat
                # as picking among the ready set deterministically.
                return min(ready)
            return tid
        if len(ready) == 1:
            return next(iter(ready))
        raise NeedChoice(frozenset(ready))

    def fresh(self) -> "ScriptScheduler":
        return ScriptScheduler(self.script)


@dataclass
class GameResult:
    """Outcome of a whole-machine game run."""

    log: Log
    rets: Dict[int, Any]
    finished: bool
    stuck: Optional[str]
    cycles: Dict[int, int]
    rounds: int
    schedule: Tuple[int, ...]

    @property
    def ok(self) -> bool:
        return self.finished and self.stuck is None


def run_game(
    interface: LayerInterface,
    players: Dict[int, Tuple[Callable, Tuple[Any, ...]]],
    scheduler: GameScheduler,
    fuel: int = 10_000,
    max_rounds: int = 1_000,
    init_log: Optional[Iterable] = None,
    record_sched: bool = True,
    fine_grained: bool = False,
) -> GameResult:
    """Play the game: all of ``players`` focused, ``scheduler`` judging.

    Each round the scheduler picks an unfinished participant, a hardware
    scheduling event is recorded if control changes (the ``Mx86``
    convention, §3.1), and that participant runs to its next query point.
    With ``fine_grained`` every primitive call is a scheduling point —
    the hardware machine ``Mx86`` of §3.1, where program transitions and
    hardware scheduling "are arbitrarily and nondeterministically
    interleaved".
    """
    buffer = LogBuffer(interface.init_log if init_log is None else init_log)
    ctxs: Dict[int, ExecutionContext] = {}
    gens: Dict[int, Any] = {}
    for tid, (player, args) in players.items():
        ctx = ExecutionContext(
            interface, tid, buffer, fuel=fuel, priv=interface.init_priv(tid)
        )
        ctx.fine_grained = fine_grained
        ctxs[tid] = ctx
        gens[tid] = player(ctx, *args)

    unfinished: Set[int] = set(players)
    rets: Dict[int, Any] = {}
    stuck: Optional[str] = None
    schedule: List[int] = []
    current: Optional[int] = None
    rounds = 0

    try:
        while unfinished and rounds < max_rounds:
            tid = scheduler.pick(buffer.snapshot(), frozenset(unfinished))
            rounds += 1
            schedule.append(tid)
            if record_sched and tid != current:
                buffer.append(hw_sched(tid))
            current = tid
            try:
                marker = next(gens[tid])
            except StopIteration as stop:
                rets[tid] = stop.value
                unfinished.discard(tid)
                continue
            if marker is not QUERY:  # pragma: no cover - protocol violation
                raise Stuck(f"player {tid} yielded non-query {marker!r}")
    except NeedChoice:
        raise
    except Stuck as err:
        stuck = err.reason

    if obs_enabled():
        inc("machine.game_runs")
        inc("machine.game_rounds", rounds)
        if stuck is not None:
            inc("machine.game_runs_stuck")
    return GameResult(
        log=buffer.snapshot(),
        rets=rets,
        finished=not unfinished and stuck is None,
        stuck=stuck,
        cycles={tid: ctx.cycles for tid, ctx in ctxs.items()},
        rounds=rounds,
        schedule=tuple(schedule),
    )


#: Prefix length at which scheduler-tree exploration hands subtrees to
#: workers.  Depth 2 yields at most |participants|² frontier tasks —
#: enough to saturate a pool without fragmenting the tree.
_FRONTIER_DEPTH = 2


def _explore_prefixes(
    run_one: Callable[[GameScheduler], GameResult],
    max_rounds: int,
    max_runs: int,
    stack: List[Tuple[int, ...]],
    frontier_depth: Optional[int] = None,
    redundancy: Optional[RedundancyBuilder] = None,
) -> Tuple[List[Tuple[Optional[GameResult], Optional[Tuple[int, ...]]]], int, int]:
    """The scheduler-prefix DFS shared by serial and parallel enumeration.

    Returns ``(plan, runs, pruned)``.  Each plan entry is either
    ``(result, None)`` for a completed run or ``(None, prefix)`` for a
    subtree deferred at ``frontier_depth`` — deferred entries sit exactly
    where the subtree's results would appear in serial DFS order (the
    stack discipline explores a branched node's subtree contiguously),
    so splicing worker results at those positions reproduces the serial
    result sequence.  Deferred prefixes are neither run nor counted;
    their runs happen (and are counted) in the worker's sub-DFS.

    ``redundancy`` (profiling) accounts the DFS's replay overhead: every
    run that ends in ``NeedChoice`` re-executed its prefix just to reach
    a new decision point, and the branch there is one decision point
    whose width is the ready-set size.  Completed runs are fingerprinted
    by the caller, which sees the full (spliced) result list.
    """
    plan: List[Tuple[Optional[GameResult], Optional[Tuple[int, ...]]]] = []
    runs = 0
    pruned = 0
    while stack:
        prefix = stack.pop()
        if frontier_depth is not None and len(prefix) >= frontier_depth:
            plan.append((None, prefix))
            continue
        runs += 1
        heartbeat("machine.schedules", explored=runs, budget=max_runs)
        if runs > max_runs:
            raise OutOfFuel(
                f"behaviour enumeration exceeded {max_runs} runs "
                f"(max_rounds={max_rounds})"
            )
        try:
            result = run_one(ScriptScheduler(prefix))
        except NeedChoice as need:
            if redundancy is not None:
                redundancy.visit(replay=True)
            if len(prefix) >= max_rounds:
                pruned += 1
                continue
            if redundancy is not None:
                redundancy.branch(len(need.ready))
            for tid in sorted(need.ready, reverse=True):
                stack.append(prefix + (tid,))
            continue
        plan.append((result, None))
    return plan, runs, pruned


def _explore_reduced(
    run_one: Callable[[ReducingScheduler], GameResult],
    axes: FrozenSet[str],
    max_rounds: int,
    max_runs: int,
    stack: List[Tuple[int, ...]],
    stats: ReductionStats,
    frontier_depth: Optional[int] = None,
    redundancy: Optional[RedundancyBuilder] = None,
    invisible: FrozenSet[int] = frozenset(),
) -> Tuple[List[Tuple[Optional[GameResult], Optional[Tuple[int, ...]]]], int, int]:
    """The reduced DFS: path extension + sleep-set dominance + transposition.

    The :class:`~repro.reduce.dpor.ReducingScheduler` extends each run
    past its decision script instead of raising :class:`NeedChoice`, so
    no prefix is ever replayed; the sibling branches it records are
    pushed shallowest-group-first with each group reverse-sorted, which
    makes the stack pop the deepest node's smallest sibling next —
    depth-first order, every subtree contiguous in ``plan`` (the same
    splice discipline as :func:`_explore_prefixes`).  A run cut by the
    transposition table or by an all-asleep sleep set counts as
    ``pruned`` (its continuation was already explored); a run cut at
    the frontier defers its current decision path as a ``(None,
    prefix)`` plan entry for a worker.

    The transposition table is scoped to this call — one table per
    explored subtree, serial and parallel alike, which is what keeps
    reduced enumeration independent of the worker count.  Cut runs are
    *not* reported to ``redundancy`` as replays: the redundancy ratio
    deliberately keeps measuring the residual duplicates among the
    completed runs (the headroom reduction has not yet removed), while
    the cuts land in ``stats`` (see DESIGN.md).
    """
    plan: List[Tuple[Optional[GameResult], Optional[Tuple[int, ...]]]] = []
    runs = 0
    pruned = 0
    table = TranspositionTable(stats) if "transpo" in axes else None
    while stack:
        prefix = stack.pop()
        runs += 1
        heartbeat("machine.schedules", explored=runs, budget=max_runs)
        if runs > max_runs:
            raise OutOfFuel(
                f"behaviour enumeration exceeded {max_runs} runs "
                f"(max_rounds={max_rounds})"
            )
        scheduler = ReducingScheduler(
            prefix, axes, stats, table=table,
            frontier_depth=frontier_depth, redundancy=redundancy,
            invisible=invisible,
        )
        try:
            result = run_one(scheduler)
        except PruneRun:
            # The scheduler already tallied the cut under its axis
            # (transposition hit or all-asleep sleep-set cut).
            pruned += 1
        except DeferRun:
            plan.append((None, tuple(scheduler.picks)))
        else:
            plan.append((result, None))
        scheduler.finalize()
        base = tuple(scheduler.picks)
        for depth, siblings in scheduler.branches:
            stem = base[:depth]
            for tid in sorted(siblings, reverse=True):
                stack.append(stem + (tid,))
    return plan, runs, pruned


def enumerate_game_logs(
    interface: LayerInterface,
    players: Dict[int, Tuple[Callable, Tuple[Any, ...]]],
    fuel: int = 10_000,
    max_rounds: int = 64,
    max_runs: int = 100_000,
    init_log: Optional[Iterable] = None,
    fine_grained: bool = False,
    coverage: Optional[CoverageBuilder] = None,
    jobs: Optional[int] = None,
    redundancy: Optional[RedundancyBuilder] = None,
) -> List[GameResult]:
    """Exhaustively enumerate game outcomes over all schedulers.

    DFS over scheduling-decision prefixes: each run replays the system
    under a :class:`ScriptScheduler`; when the script runs out at a real
    decision point the prefix branches over every ready participant.
    The result is the bounded behaviour set ``[[P]]_{L[D]}`` — "the set of
    logs generated by playing the game under all possible schedulers"
    (§2).

    ``coverage`` (optional) accumulates the explored schedule-prefix
    counts and depth histogram; when omitted and observability is on, a
    fresh ``"machine.schedules"`` axis record is published to the
    process-wide coverage registry so every behaviour enumeration shows
    up in the run's coverage map.

    With ``jobs > 1`` (or ``REPRO_JOBS`` set) the tree is split at a
    fixed frontier depth: the parent explores shallow prefixes; subtrees
    rooted at the frontier are handed to worker processes and their
    results spliced back at the positions serial DFS would have produced
    them, so the result list, run count and an eventual
    :class:`OutOfFuel` are identical to a serial run.
    """
    own_coverage = coverage is None and obs_enabled()
    if own_coverage:
        coverage = CoverageBuilder(
            "machine.schedules", budget=max_runs, depth_bound=max_rounds
        )
    own_redundancy = False
    if redundancy is None and profile_enabled():
        redundancy = RedundancyBuilder("machine.schedules")
        own_redundancy = True

    def run_one(scheduler: GameScheduler) -> GameResult:
        return run_game(
            interface,
            players,
            scheduler,
            fuel=fuel,
            max_rounds=max_rounds,
            init_log=init_log,
            fine_grained=fine_grained,
        )

    n_jobs = get_jobs(jobs)
    axes = frozenset(current_axes())
    # dpor/transpo/static-indep switch the exploration to the reducing
    # scheduler; with all machine axes off the seed DFS runs
    # bit-for-bit unchanged.
    reducing = bool(axes & MACHINE_AXES)
    stats = ReductionStats(axes) if reducing else None
    invisible: FrozenSet[int] = frozenset()
    if STATIC_INDEP in axes and len(players) > 1:
        from ..analysis.independence import static_invisible_tids

        invisible = static_invisible_tids(interface, players)
    # Reduced enumeration always routes through the frontier-split code
    # path (a 1-job parallel_map is a plain inline loop), so the
    # subtree partitioning — and with it the transposition table scope —
    # is identical serially and under REPRO_JOBS.
    split = (
        _FRONTIER_DEPTH
        if (reducing or n_jobs > 1)
        and len(players) > 1 and max_rounds > _FRONTIER_DEPTH
        else None
    )
    results: List[GameResult] = []
    with span(
        "enumerate_game_logs",
        interface=interface.name,
        participants=len(players),
        fine_grained=fine_grained,
    ):
        try:
            if reducing:
                plan, runs, pruned = _explore_reduced(
                    run_one, axes, max_rounds, max_runs, [()], stats,
                    frontier_depth=split, redundancy=redundancy,
                    invisible=invisible,
                )
            else:
                plan, runs, pruned = _explore_prefixes(
                    run_one, max_rounds, max_runs, [()], frontier_depth=split,
                    redundancy=redundancy,
                )
            if split is not None:
                frontier = [prefix for result, prefix in plan if result is None]

                def explore_subtrees(prefixes):
                    out = []
                    for prefix in prefixes:
                        sub_red = (
                            RedundancyBuilder("machine.schedules")
                            if profile_enabled() else None
                        )
                        if reducing:
                            sub_stats = ReductionStats(axes)
                            sub_plan, sub_runs, sub_pruned = _explore_reduced(
                                run_one, axes, max_rounds, max_runs, [prefix],
                                sub_stats, redundancy=sub_red,
                                invisible=invisible,
                            )
                        else:
                            sub_stats = None
                            sub_plan, sub_runs, sub_pruned = _explore_prefixes(
                                run_one, max_rounds, max_runs, [prefix],
                                redundancy=sub_red,
                            )
                        out.append(
                            (
                                [r for r, _ in sub_plan],
                                sub_runs,
                                sub_pruned,
                                sub_red.as_dict() if sub_red else None,
                                sub_stats.as_dict() if sub_stats else None,
                            )
                        )
                    return out

                chunks = chunk_evenly(frontier, n_jobs * CHUNKS_PER_WORKER)
                subtree_outputs = [
                    entry
                    for chunk_out in parallel_map(
                        explore_subtrees, chunks, jobs=n_jobs
                    )
                    for entry in chunk_out
                ]
                cursor = 0
                for result, _prefix in plan:
                    if result is not None:
                        results.append(result)
                    else:
                        (sub_results, sub_runs, sub_pruned,
                         sub_red_record, sub_stats_record) = subtree_outputs[cursor]
                        cursor += 1
                        results.extend(r for r in sub_results if r is not None)
                        runs += sub_runs
                        pruned += sub_pruned
                        if redundancy is not None and sub_red_record:
                            redundancy.absorb(sub_red_record)
                        if stats is not None and sub_stats_record:
                            stats.absorb(sub_stats_record)
                if runs > max_runs:
                    raise OutOfFuel(
                        f"behaviour enumeration exceeded {max_runs} runs "
                        f"(max_rounds={max_rounds})"
                    )
            else:
                results = [result for result, _prefix in plan]
        except OutOfFuel:
            if coverage is not None:
                coverage.exhausted = False
            raise
        if coverage is not None:
            for result in results:
                coverage.visit(depth=len(result.schedule))
            if pruned:
                coverage.prune(pruned)
    if coverage is not None:
        coverage.distinct = (coverage.distinct or 0) + len(results)
        if own_coverage:
            coverage.record()
    if redundancy is not None:
        # Completed runs are fingerprinted here, over the final (spliced)
        # result list, so fingerprint universes never cross the process
        # boundary: replay-equivalence is judged exactly as a serial
        # enumeration would judge it.
        for result in results:
            redundancy.visit(
                state_fingerprint(
                    result.log.without_sched(),
                    repr(sorted(result.rets.items())),
                    result.finished,
                    result.stuck,
                )
            )
        if own_redundancy:
            redundancy.record()
    if stats is not None and stats.any:
        # Surface the tallies to whichever checker opened a collector
        # (check_sim / check_soundness attach them to certificate
        # provenance as the ``reduction`` block).
        contribute(stats)
    if obs_enabled():
        inc("machine.schedules_explored", runs)
        inc("machine.interleavings", len(results))
    return results


def sample_game_logs(
    interface: LayerInterface,
    players: Dict[int, Tuple[Callable, Tuple[Any, ...]]],
    schedulers: Iterable[GameScheduler],
    fuel: int = 10_000,
    max_rounds: int = 1_000,
    init_log: Optional[Iterable] = None,
    fine_grained: bool = False,
    coverage: Optional[CoverageBuilder] = None,
) -> List[GameResult]:
    """Behaviours under an explicit scheduler family (non-exhaustive).

    For scenarios too large for :func:`enumerate_game_logs`, a family of
    fair / round-robin / seeded-random schedulers still gives broad
    interleaving coverage; the certificate records that coverage was
    sampled, not exhaustive (the coverage axis is published in
    ``"sampled"`` mode, never ``exhausted``).
    """
    own_coverage = coverage is None and obs_enabled()
    if own_coverage:
        coverage = CoverageBuilder(
            "machine.schedules", depth_bound=max_rounds, mode=SAMPLED
        )
    results = []
    with span(
        "sample_game_logs",
        interface=interface.name,
        participants=len(players),
    ):
        for scheduler in schedulers:
            result = run_game(
                interface,
                players,
                scheduler.fresh(),
                fuel=fuel,
                max_rounds=max_rounds,
                init_log=init_log,
                fine_grained=fine_grained,
            )
            if coverage is not None:
                coverage.visit(depth=len(result.schedule))
            results.append(result)
    if coverage is not None:
        coverage.exhausted = False
        coverage.distinct = (coverage.distinct or 0) + len(
            {r.log for r in results}
        )
        if own_coverage:
            coverage.record()
    inc("machine.schedules_sampled", len(results))
    return results


def behavior_logs(results: Iterable[GameResult], drop_sched: bool = True) -> Set[Log]:
    """The behaviour set: final logs of completed runs (deduplicated)."""
    logs: Set[Log] = set()
    for result in results:
        if not result.ok:
            continue
        logs.add(result.log.without_sched() if drop_sched else result.log)
    return logs
