"""Exception hierarchy for the CCAL reproduction.

The paper's semantics distinguishes three failure modes that we model as
exceptions:

* ``Stuck`` — the machine has no transition.  In the push/pull memory model
  (paper §3.1) a data race manifests as the replay function returning
  ``None`` and the machine getting stuck; proving a program never gets
  stuck is how race freedom is established.
* ``VerificationError`` — a checked judgment (simulation, rely/guarantee
  implication, contextual refinement, translation validation) failed.
  Raised by the verifiers in :mod:`repro.core.simulation`,
  :mod:`repro.core.calculus` and friends.
* ``ComposeError`` — a layer-calculus rule was applied to premises that do
  not fit together structurally (mismatched interfaces, overlapping
  modules, non-disjoint focused sets, ...).
"""

from __future__ import annotations


class CCALError(Exception):
    """Base class for all errors raised by this library."""


class Stuck(CCALError):
    """The abstract machine has no transition from the current state.

    Carries a human-readable ``reason``.  Getting stuck is how the
    push/pull memory model reports data races (paper Fig. 6, Fig. 8), how
    replay functions report ill-formed logs, and how fuel exhaustion is
    reported by the interpreters when a liveness bound is exceeded.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class OutOfFuel(Stuck):
    """An interpreter exceeded its step budget.

    Sub-class of :class:`Stuck` because a fuel-bounded run that does not
    terminate within the bound is treated as a liveness violation by the
    progress checker (paper §4.1: the ticket-lock loop must terminate in
    ``n * m * #CPU`` steps).
    """

    def __init__(self, reason: str = "out of fuel"):
        super().__init__(reason)


class VerificationError(CCALError):
    """A mechanically checked obligation failed.

    The certificate machinery converts a failed obligation into this
    exception so that an invalid judgment can never be packaged into a
    :class:`~repro.core.certificate.CertifiedLayer`.
    """


class ComposeError(CCALError):
    """A layer-calculus rule (Fig. 9) was applied to incompatible premises."""


class RelyViolation(VerificationError):
    """An environment context produced events outside the rely condition."""


class GuaranteeViolation(VerificationError):
    """A focused participant produced a log violating its guarantee."""
