"""Program modules: the ``M`` in ``L1 ⊢_R M : L2``.

A module is a finite map from function names to implementations.  An
implementation is ultimately a *player* generator (see
:mod:`repro.core.context`); it may originate from

* mini-C source interpreted by :mod:`repro.clight.semantics`,
* mini-assembly interpreted by :mod:`repro.asm.semantics`, or
* a specification strategy written directly in Python (used when a layer
  is introduced purely by abstraction, with no new code).

Modules support the paper's linking operator ``⊕`` (disjoint union) and
can be *linked* onto an interface, turning each function into a primitive
of an extended interface — that is how the behaviour ``[[P ⊕ M]]_{L}`` is
executed (the client program calls module functions exactly as it would
call primitives of the overlay).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional

from .errors import ComposeError
from .interface import LayerInterface, Prim, SHARED


@dataclass
class FuncImpl:
    """One function implementation inside a module.

    ``player`` is a generator function ``(ctx, *args) -> ret`` executing
    the body over the *underlay* interface.  ``source`` keeps the original
    syntax object (C AST, asm function, or None for Python specs) for
    inventory statistics; ``lang`` tags its origin.
    """

    name: str
    player: Callable
    source: Any = None
    lang: str = "spec"  # "c" | "asm" | "spec"

    def __repr__(self):
        return f"FuncImpl({self.name}:{self.lang})"

    def location(self) -> str:
        """``file:line`` of the implementation body, for lint findings."""
        code = getattr(self.player, "__code__", None)
        if code is not None:
            return f"{code.co_filename}:{code.co_firstlineno}"
        return f"<{self.lang}:{self.name}>"


class Module:
    """A finite map of function implementations, with ``⊕``."""

    def __init__(self, funcs: Optional[Dict[str, FuncImpl]] = None, name: str = ""):
        self.funcs: Dict[str, FuncImpl] = dict(funcs or {})
        self.name = name or "+".join(sorted(self.funcs)) or "∅"

    @classmethod
    def single(cls, impl: FuncImpl) -> "Module":
        return cls({impl.name: impl}, name=impl.name)

    @classmethod
    def empty(cls) -> "Module":
        return cls({}, name="∅")

    def oplus(self, other: "Module") -> "Module":
        """``M ⊕ N`` — union; names must be disjoint (or identical entries)."""
        merged = dict(self.funcs)
        for key, impl in other.funcs.items():
            if key in merged and merged[key] is not impl:
                raise ComposeError(f"module linking conflict on {key!r}")
            merged[key] = impl
        return Module(merged, name=f"({self.name} ⊕ {other.name})")

    __add__ = oplus

    def __contains__(self, name: str) -> bool:
        return name in self.funcs

    def __iter__(self):
        return iter(self.funcs.values())

    def __len__(self):
        return len(self.funcs)

    def names(self) -> Iterable[str]:
        return self.funcs.keys()

    def __repr__(self):
        return f"Module({self.name})"


def link(interface: LayerInterface, module: Module, name: Optional[str] = None) -> LayerInterface:
    """``P ⊕ M`` executability: extend an interface with module functions.

    Each module function becomes a primitive whose specification runs the
    implementation body (over the same interface, so module functions may
    call the interface's primitives — and, for mutually layered modules,
    previously linked functions).  Used to compute ``[[P ⊕ M]]_{L[D]}``.
    """
    prims = []
    for impl in module:
        if interface.has(impl.name):
            raise ComposeError(
                f"cannot link {impl.name!r}: already a primitive of {interface.name}"
            )
        player = impl.player

        def spec(ctx, *args, _player=player):
            ret = yield from _player(ctx, *args)
            return ret

        prims.append(Prim(impl.name, spec, kind=SHARED, cycle_cost=1,
                          doc=f"linked from module {module.name}"))
    return interface.extend(name or f"{interface.name}+{module.name}", prims)
