"""Fixed-width machine integers with wraparound semantics.

The ticket-lock verification in the paper (§4.1) must "handle potential
integer overflows for ``t`` and ``n``": the C implementation stores tickets
in a 32-bit unsigned integer that wraps back to zero, while the
intermediate specification uses an unbounded integer.  The simulation
relation maps the unbounded ticket to its value modulo ``2**32``, and
mutual exclusion survives overflow as long as ``#CPU < 2**32``.

We reproduce that argument executably: :class:`MachInt` wraps Python
integers at a configurable bit width so that tests and property checks can
drive the width down (e.g. 4 bits) and make wraparound actually happen.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IntWidth:
    """A machine-integer width: values live in ``[0, 2**bits)``."""

    bits: int

    @property
    def modulus(self) -> int:
        return 1 << self.bits

    @property
    def max_value(self) -> int:
        return self.modulus - 1

    def wrap(self, value: int) -> int:
        """Reduce ``value`` into this width's range (unsigned wraparound)."""
        return value & (self.modulus - 1)

    def to_signed(self, value: int) -> int:
        """Interpret an in-range unsigned value as two's-complement."""
        value = self.wrap(value)
        if value >= self.modulus >> 1:
            return value - self.modulus
        return value


UINT8 = IntWidth(8)
UINT16 = IntWidth(16)
UINT32 = IntWidth(32)
UINT64 = IntWidth(64)


class MachInt:
    """An unsigned machine integer of a given :class:`IntWidth`.

    Arithmetic wraps; comparisons are unsigned.  Instances are immutable
    and hashable so they can be stored in events and logs.
    """

    __slots__ = ("_value", "_width")

    def __init__(self, value: int, width: IntWidth = UINT32):
        if isinstance(value, MachInt):
            value = value.value
        object.__setattr__(self, "_value", width.wrap(int(value)))
        object.__setattr__(self, "_width", width)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("MachInt is immutable")

    @property
    def value(self) -> int:
        return self._value

    @property
    def width(self) -> IntWidth:
        return self._width

    def _coerce(self, other) -> int:
        if isinstance(other, MachInt):
            if other._width != self._width:
                raise TypeError(
                    f"width mismatch: {self._width.bits} vs {other._width.bits}"
                )
            return other._value
        if isinstance(other, int):
            return other
        return NotImplemented

    def _make(self, value: int) -> "MachInt":
        return MachInt(value, self._width)

    def __add__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._make(self._value + rhs)

    __radd__ = __add__

    def __sub__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._make(self._value - rhs)

    def __rsub__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._make(rhs - self._value)

    def __mul__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._make(self._value * rhs)

    __rmul__ = __mul__

    def __eq__(self, other):
        if isinstance(other, MachInt):
            return self._width == other._width and self._value == other._value
        if isinstance(other, int):
            return self._value == self._width.wrap(other)
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._value < self._width.wrap(rhs)

    def __le__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._value <= self._width.wrap(rhs)

    def __gt__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._value > self._width.wrap(rhs)

    def __ge__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._value >= self._width.wrap(rhs)

    def __hash__(self):
        return hash((self._value, self._width.bits))

    def __int__(self):
        return self._value

    def __index__(self):
        return self._value

    def __repr__(self):
        return f"u{self._width.bits}({self._value})"


def uint32(value: int) -> MachInt:
    """Construct a 32-bit unsigned machine integer (the paper's ``uint``)."""
    return MachInt(value, UINT32)


def modular_distance(a: int, b: int, width: IntWidth) -> int:
    """The number of increments taking ``a`` to ``b`` modulo the width.

    This is the quantity the overflow-safe ticket-lock argument reasons
    about: thread ``i`` holding ticket ``t`` waits for ``now_serving`` to
    reach ``t``; with fewer than ``modulus`` CPUs, the modular distance
    from ``now_serving`` to ``t`` strictly decreases on every release, so
    wraparound never causes two holders.
    """
    return width.wrap(b - a)
