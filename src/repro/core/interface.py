"""Layer interfaces: collections of primitives plus rely/guarantee.

A layer interface ``L[A] = (L, R, G)`` (paper Fig. 7) equips an abstract
machine with

* ``L`` — a collection of primitives (private, shared, or atomic), each
  given by a specification strategy,
* ``R`` — the rely condition: which environment contexts are valid, and
* ``G`` — the guarantee condition the focused participants maintain.

A primitive's specification is a *player* generator (see
:mod:`repro.core.context`): it may read the log, query the environment
(``yield from ctx.query()``), emit events, and update private state.  The
three kinds of primitives match the paper's classification (§3.1):

* ``private`` — thread-local; no events, no queries ("silent").
* ``shared`` — records an observable event; queries the environment at
  its query point.
* ``atomic`` — the result of a log-lift: exactly one event per call, with
  the critical-state discipline built in (e.g. atomic ``acq``/``rel``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from .errors import ComposeError, Stuck
from .events import Event
from .rely_guarantee import Guarantee, Rely

PRIVATE = "private"
SHARED = "shared"
ATOMIC = "atomic"

_KINDS = (PRIVATE, SHARED, ATOMIC)


@dataclass(frozen=True)
class Prim:
    """One primitive of a layer interface.

    ``spec`` is a generator function ``(ctx, *args) -> ret`` following the
    player protocol.  ``enters_critical`` / ``exits_critical`` declare the
    critical-state effect the machine applies after a successful call
    (used by atomic lock primitives and pull/push).  ``cycle_cost`` is the
    call overhead charged by the cost model (the §6 performance
    evaluation measures exactly this overhead for leftover logical
    primitives).
    """

    name: str
    spec: Callable
    kind: str = SHARED
    enters_critical: bool = False
    exits_critical: bool = False
    cycle_cost: int = 1
    doc: str = ""

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown primitive kind: {self.kind}")

    def __repr__(self):
        return f"Prim({self.name}:{self.kind})"


class LayerInterface:
    """A layer interface ``(L, R, G)`` over a domain of participant ids.

    Instances are immutable; the builder methods (:meth:`extend`,
    :meth:`hiding`, :meth:`with_rely`, ...) return new interfaces.  The
    *focused set* ``A`` of ``L[A]`` is not stored here — it is chosen at
    run time by the machine (:mod:`repro.core.machine`), which is what
    lets one interface value play every role in the ``Pcomp`` rule.
    """

    def __init__(
        self,
        name: str,
        domain: Iterable[int],
        prims: Optional[Dict[str, Prim]] = None,
        rely: Optional[Rely] = None,
        guar: Optional[Guarantee] = None,
        init_log: Tuple[Event, ...] = (),
        init_priv: Optional[Callable[[int], Dict[str, Any]]] = None,
    ):
        self.name = name
        self.domain: FrozenSet[int] = frozenset(domain)
        self.prims: Dict[str, Prim] = dict(prims or {})
        self.rely = rely if rely is not None else Rely()
        self.guar = guar if guar is not None else Guarantee()
        self.init_log = tuple(init_log)
        self._init_priv = init_priv

    # -- primitive access ----------------------------------------------------

    def lookup(self, name: str) -> Prim:
        prim = self.prims.get(name)
        if prim is None:
            raise Stuck(f"undefined primitive {name!r} in layer {self.name}")
        return prim

    def has(self, name: str) -> bool:
        return name in self.prims

    def init_priv(self, tid: int) -> Dict[str, Any]:
        """Initial private state for participant ``tid``."""
        if self._init_priv is None:
            return {}
        return self._init_priv(tid)

    # -- builders --------------------------------------------------------------

    def extend(
        self,
        name: str,
        prims: Iterable[Prim],
        hide: Iterable[str] = (),
        rely: Optional[Rely] = None,
        guar: Optional[Guarantee] = None,
    ) -> "LayerInterface":
        """Build an overlay: add new primitives, optionally hiding old ones.

        This is how a module's certified functions become primitives of
        the layer above, while the implementation details they relied on
        disappear from the interface ("the overlay interface completely
        removes the internal concrete memory block", §7).
        """
        new_prims = {k: v for k, v in self.prims.items() if k not in set(hide)}
        for prim in prims:
            if prim.name in new_prims:
                raise ComposeError(
                    f"primitive {prim.name!r} already present in {self.name}"
                )
            new_prims[prim.name] = prim
        return LayerInterface(
            name,
            self.domain,
            new_prims,
            rely if rely is not None else self.rely,
            guar if guar is not None else self.guar,
            self.init_log,
            self._init_priv,
        )

    def hiding(self, names: Iterable[str], new_name: Optional[str] = None) -> "LayerInterface":
        hidden = set(names)
        return LayerInterface(
            new_name or self.name,
            self.domain,
            {k: v for k, v in self.prims.items() if k not in hidden},
            self.rely,
            self.guar,
            self.init_log,
            self._init_priv,
        )

    def with_rely(self, rely: Rely) -> "LayerInterface":
        return LayerInterface(
            self.name, self.domain, self.prims, rely, self.guar,
            self.init_log, self._init_priv,
        )

    def with_guar(self, guar: Guarantee) -> "LayerInterface":
        return LayerInterface(
            self.name, self.domain, self.prims, self.rely, guar,
            self.init_log, self._init_priv,
        )

    def with_init_priv(self, init_priv: Callable[[int], Dict[str, Any]]) -> "LayerInterface":
        return LayerInterface(
            self.name, self.domain, self.prims, self.rely, self.guar,
            self.init_log, init_priv,
        )

    def with_init_log(self, init_log: Iterable[Event]) -> "LayerInterface":
        return LayerInterface(
            self.name, self.domain, self.prims, self.rely, self.guar,
            tuple(init_log), self._init_priv,
        )

    def with_name(self, name: str) -> "LayerInterface":
        return LayerInterface(
            name, self.domain, self.prims, self.rely, self.guar,
            self.init_log, self._init_priv,
        )

    def merge_prims(self, other: "LayerInterface", name: Optional[str] = None) -> "LayerInterface":
        """``L1.L ⊕ L2.L`` — union of primitive collections (Hcomp).

        Requires disjoint primitive names apart from primitives that are
        literally the same object (shared underlay pass-throughs).
        """
        if self.domain != other.domain:
            raise ComposeError(
                f"domain mismatch: {sorted(self.domain)} vs {sorted(other.domain)}"
            )
        merged = dict(self.prims)
        for key, prim in other.prims.items():
            if key in merged and merged[key] is not prim:
                raise ComposeError(f"conflicting primitive {key!r} in ⊕")
            merged[key] = prim
        return LayerInterface(
            name or f"({self.name} ⊕ {other.name})",
            self.domain,
            merged,
            self.rely,
            self.guar,
            self.init_log,
            self._init_priv,
        )

    def __repr__(self):
        return (
            f"LayerInterface({self.name}, D={sorted(self.domain)}, "
            f"prims={sorted(self.prims)})"
        )


# --- helpers to define primitives -----------------------------------------


def private_prim(name: str, fn: Callable, cycle_cost: int = 1, doc: str = "") -> Prim:
    """Wrap a plain Python function as a private (silent) primitive.

    ``fn(ctx, *args) -> ret`` runs atomically with no events and no
    queries.
    """

    def spec(ctx, *args):
        return fn(ctx, *args)
        yield  # pragma: no cover - makes `spec` a generator function

    spec.__wrapped__ = fn  # real signature/source for static analysis
    return Prim(name, spec, kind=PRIVATE, cycle_cost=cycle_cost, doc=doc)


def shared_prim(
    name: str,
    spec: Callable,
    enters_critical: bool = False,
    exits_critical: bool = False,
    cycle_cost: int = 1,
    doc: str = "",
) -> Prim:
    return Prim(
        name,
        spec,
        kind=SHARED,
        enters_critical=enters_critical,
        exits_critical=exits_critical,
        cycle_cost=cycle_cost,
        doc=doc,
    )


def atomic_prim(
    name: str,
    spec: Callable,
    enters_critical: bool = False,
    exits_critical: bool = False,
    cycle_cost: int = 1,
    doc: str = "",
) -> Prim:
    return Prim(
        name,
        spec,
        kind=ATOMIC,
        enters_critical=enters_critical,
        exits_critical=exits_critical,
        cycle_cost=cycle_cost,
        doc=doc,
    )


def simple_event_prim(name: str, cycle_cost: int = 1, doc: str = "") -> Prim:
    """A shared primitive that queries, emits one event, returns None.

    The shape of the paper's ``f``/``g``/``hold`` primitives in Fig. 3.
    """

    def spec(ctx, *args):
        yield from ctx.query()
        ctx.emit(name, *args)
        return None

    return Prim(name, spec, kind=SHARED, cycle_cost=cycle_cost, doc=doc)


def ghost_prim(name: str, cycle_cost: int = 10) -> Prim:
    """A *logical primitive*: manipulates only ghost state, but costs cycles.

    The §6 performance evaluation found leftover calls to such primitives
    cost 87-35 = 52 real cycles; we reproduce the experiment by charging
    ``cycle_cost`` per call and then erasing the calls.
    """

    def spec(ctx, *args):
        return None
        yield  # pragma: no cover

    return Prim(name, spec, kind=PRIVATE, cycle_cost=cycle_cost, doc="ghost")
