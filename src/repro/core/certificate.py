"""Certificates: the mechanized proof objects of this reproduction.

The Coq development attaches "a mechanized proof object showing that the
layer implementation M ... faithfully implements the desirable interface
L2" to every certified layer.  Python cannot carry Coq proofs, so a
:class:`Certificate` records instead *exactly what was checked*: every
discharged obligation, the generator bounds (environment depth, fuel,
argument families), and the universe of logs encountered (reused by the
``Compat`` rule to check rely/guarantee implications).

The kernel discipline is preserved by convention and constructor checks:
:class:`CertifiedLayer` raises unless its certificate is entirely
successful, and the only functions in this library that build
certificates for layer judgments are the rule functions in
:mod:`repro.core.calculus` and the checkers in
:mod:`repro.core.simulation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..obs import obs_enabled
from ..obs.coverage import merge_coverage_maps
from ..obs.metrics import MetricsWindow, inc
from ..obs.store import note_certificate
from .errors import VerificationError
from .interface import LayerInterface
from .log import Log
from .module import Module
from .relation import SimRel


@dataclass
class Obligation:
    """One discharged (or failed) proof obligation.

    ``evidence`` is the optional structured failure record: a dict whose
    ``"counterexample"`` key (when present) holds a
    :class:`~repro.obs.forensics.Counterexample` — the shrunken failing
    schedule, environment moves and divergence point — so a failed
    certificate carries *replayable* diagnosis, not just a message.
    """

    description: str
    ok: bool
    details: str = ""
    evidence: Optional[Dict[str, Any]] = None

    @property
    def counterexample(self):
        """The attached counterexample, if forensics captured one."""
        return (self.evidence or {}).get("counterexample")

    def digest(self) -> str:
        """One line of the strongest evidence this obligation carries."""
        counterexample = self.counterexample
        if counterexample is not None and hasattr(counterexample, "digest"):
            return counterexample.digest()
        return self.details or ("ok" if self.ok else "no evidence captured")

    def __repr__(self):
        mark = "✓" if self.ok else "✗"
        return f"{mark} {self.description}" + (f" — {self.details}" if self.details else "")


@dataclass
class Certificate:
    """Evidence for one checked judgment.

    ``bounds`` records the exploration limits (the honesty ledger of the
    bounded-exhaustive substitution, DESIGN.md §4).  ``log_universe``
    collects every log seen while checking; ``children`` are the
    certificates of sub-judgments (premises of calculus rules).

    ``provenance`` is the optional observability annotation (see
    :mod:`repro.obs`): when a judgment is checked with observability
    enabled, the checker stamps per-rule wall time, exploration counts
    (environment contexts, runs, scheduler rounds) and a metric-delta
    snapshot here, turning the certificate into a self-describing audit
    artifact.  It is ``None`` on the disabled fast path and never
    affects validity (:attr:`ok` ignores it).
    """

    judgment: str
    rule: str
    obligations: List[Obligation] = field(default_factory=list)
    bounds: Dict[str, Any] = field(default_factory=dict)
    log_universe: Tuple[Log, ...] = ()
    children: List["Certificate"] = field(default_factory=list)
    provenance: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.obligations) and all(
            c.ok for c in self.children
        )

    @property
    def failures(self) -> List[Obligation]:
        out = [o for o in self.obligations if not o.ok]
        for child in self.children:
            out.extend(child.failures)
        return out

    def obligation_count(self) -> int:
        return len(self.obligations) + sum(
            c.obligation_count() for c in self.children
        )

    def all_logs(self) -> Tuple[Log, ...]:
        logs: List[Log] = list(self.log_universe)
        for child in self.children:
            logs.extend(child.all_logs())
        return tuple(logs)

    def require_ok(self) -> "Certificate":
        if not self.ok:
            failed = self.failures
            preview = "\n".join(f"  {o!r}" for o in failed[:5])
            error = VerificationError(
                f"judgment {self.judgment!r} [{self.rule}] has "
                f"{len(failed)} failed obligation(s):\n{preview}"
            )
            # Keep the full certificate (and its counterexamples)
            # reachable from the raised error for forensic tooling.
            error.certificate = self
            raise error
        return self

    def add(
        self,
        description: str,
        ok: bool,
        details: str = "",
        evidence: Optional[Dict[str, Any]] = None,
    ) -> Obligation:
        obligation = Obligation(description, ok, details, evidence)
        self.obligations.append(obligation)
        if obs_enabled():
            inc("cert.obligations_discharged" if ok else "cert.obligations_failed")
            if evidence and "counterexample" in evidence:
                inc("cert.counterexamples_captured")
        return obligation

    def counterexamples(self) -> List[Any]:
        """Every counterexample attached anywhere in this tree."""
        out = [
            o.counterexample for o in self.obligations
            if o.counterexample is not None
        ]
        for child in self.children:
            out.extend(child.counterexamples())
        return out

    def summary(self, max_failures: int = 3) -> str:
        """The one-line status; failed certificates add evidence digests.

        Each failed obligation contributes one line carrying its
        counterexample digest (shrunk schedule + first divergent event)
        when forensics captured one, the bare details string otherwise.
        """
        status = "OK" if self.ok else "FAILED"
        head = (
            f"[{status}] {self.judgment} ({self.rule}): "
            f"{self.obligation_count()} obligations, bounds={self.bounds}"
        )
        if self.ok:
            return head
        failed = self.failures
        lines = [head]
        for obligation in failed[:max_failures]:
            lines.append(f"  ✗ {obligation.description} — {obligation.digest()}")
        if len(failed) > max_failures:
            lines.append(f"  … and {len(failed) - max_failures} more failures")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """The whole certificate tree as JSON-ready data.

        The schema consumed by ``python -m repro.obs explain``:
        obligations keep their structured evidence (counterexamples
        serialize via ``to_dict``), provenance (including the coverage
        map) passes through, children recurse.
        """
        return {
            "schema": "repro.cert/v1",
            "judgment": self.judgment,
            "rule": self.rule,
            "ok": self.ok,
            "bounds": _jsonable(self.bounds),
            "log_universe": len(self.log_universe),
            "provenance": _jsonable(self.provenance),
            "obligations": [
                {
                    "description": o.description,
                    "ok": o.ok,
                    "details": o.details,
                    "evidence": _jsonable(o.evidence),
                }
                for o in self.obligations
            ],
            "children": [child.to_json() for child in self.children],
        }

    def canonical_bytes(self) -> bytes:
        """The wire serialization of this certificate tree.

        Canonical JSON — sorted keys, no ASCII escaping, UTF-8 — of
        :meth:`to_json`.  This is the byte string the determinism
        contract quantifies over: serial, ``jobs=N``, cache-warm and
        ``repro.serve``-served runs of the same judgment must produce
        *these exact bytes* (observability off).  Benchmarks, the
        equivalence suites and the serve daemon's content-addressed
        store all compare and store this form.
        """
        import json

        return json.dumps(
            self.to_json(), sort_keys=True, ensure_ascii=False
        ).encode("utf-8")

    def __repr__(self):
        return f"Certificate({self.summary()})"


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-serializable data.

    Counterexamples (anything with ``to_dict``) serialize structurally;
    other non-primitive values fall back to ``repr``.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "to_dict"):
        return value.to_dict()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    return repr(value)


class CertifiedLayer:
    """The judgment ``L1[A] ⊢_R M : L2[A]`` together with its certificate.

    Construction *requires* a fully successful certificate — an invalid
    judgment cannot be packaged, mirroring the Coq kernel discipline.
    """

    def __init__(
        self,
        underlay: LayerInterface,
        module: Module,
        overlay: LayerInterface,
        relation: SimRel,
        focused: Iterable[int],
        certificate: Certificate,
    ):
        certificate.require_ok()
        self.underlay = underlay
        self.module = module
        self.overlay = overlay
        self.relation = relation
        self.focused: FrozenSet[int] = frozenset(focused)
        self.certificate = certificate

    @property
    def judgment(self) -> str:
        focus = ",".join(str(t) for t in sorted(self.focused))
        return (
            f"{self.underlay.name}[{focus}] ⊢_{self.relation.name} "
            f"{self.module.name} : {self.overlay.name}[{focus}]"
        )

    def __repr__(self):
        return f"CertifiedLayer({self.judgment})"


def stamp_provenance(
    cert: Certificate,
    wall_time_s: float,
    window: Optional[MetricsWindow] = None,
    **extra: Any,
) -> Certificate:
    """Attach an observability provenance record to ``cert``.

    A no-op unless observability is enabled (:mod:`repro.obs`), so
    checkers can call it unconditionally.  ``window`` supplies the
    counter deltas accumulated while the judgment was being checked;
    ``extra`` carries checker-specific fields (environment-context
    counts, generator coverage, scheduler families, ...).

    When a run ledger is armed (:mod:`repro.obs.store`) the certificate
    is additionally noted for the run record — *before* the obs gate
    and without touching the certificate, so ledger capture works with
    obs off and never perturbs certificate bytes.
    """
    note_certificate(cert, wall_time_s)
    if not obs_enabled():
        return cert
    provenance: Dict[str, Any] = {
        "rule": cert.rule,
        "judgment": cert.judgment,
        "wall_time_s": round(wall_time_s, 6),
        "obligations": {
            "direct": len(cert.obligations),
            "total": cert.obligation_count(),
            "failed": len(cert.failures),
        },
        "bounds": dict(cert.bounds),
        "log_universe": len(cert.log_universe),
        "children": len(cert.children),
    }
    if window is not None:
        delta = window.delta()
        if delta:
            provenance["metrics"] = delta
    provenance.update(extra)
    if "coverage" not in provenance:
        # A rule wrapper re-stamping a checker's certificate (e.g. Fun
        # over check_sim) must not drop the coverage the checker already
        # computed; composition rules, which enumerate nothing
        # themselves, inherit the union of their premises' coverage so
        # every certificate in a derivation states what it was checked
        # against.
        prior = (cert.provenance or {}).get("coverage")
        inherited = prior or merge_coverage_maps(
            (child.provenance or {}).get("coverage")
            for child in cert.children
        )
        if inherited:
            provenance["coverage"] = inherited
    if "profile" not in provenance:
        # Same inheritance for the profiling annotation: a re-stamping
        # wrapper keeps the checker's profile; composition rules inherit
        # the aggregate redundancy of their premises, so the root of a
        # derivation states the total measured redundancy backing it.
        from ..obs.profile import merge_profile_maps

        prior_profile = (cert.provenance or {}).get("profile")
        inherited_profile = prior_profile or merge_profile_maps(
            (child.provenance or {}).get("profile")
            for child in cert.children
        )
        if inherited_profile:
            provenance["profile"] = inherited_profile
    if "reduction" not in provenance:
        # And for the state-space-reduction accounting: wrappers keep the
        # checker's tally of pruned classes / law applications;
        # composition rules inherit the merged tallies of their premises.
        from ..reduce.stats import merge_reduction_maps

        prior_reduction = (cert.provenance or {}).get("reduction")
        inherited_reduction = prior_reduction or merge_reduction_maps(
            (child.provenance or {}).get("reduction")
            for child in cert.children
        )
        if inherited_reduction:
            provenance["reduction"] = inherited_reduction
    if "incremental" not in provenance:
        # And for the obligation-cache accounting: a parent whose
        # children were assembled from warm per-obligation entries
        # reports the aggregate ``{reused, rechecked, slice_misses}`` so
        # derivation roots state how incremental the rerun was.
        from ..parallel.cache import merge_incremental_records

        prior_incremental = (cert.provenance or {}).get("incremental")
        inherited_incremental = prior_incremental or merge_incremental_records(
            (child.provenance or {}).get("incremental")
            for child in cert.children
        )
        if inherited_incremental:
            provenance["incremental"] = inherited_incremental
    cert.provenance = provenance
    return cert


def stamp_incremental(
    cert: Certificate,
    status: str,
    key: Optional[str] = None,
    exact: bool = True,
) -> Certificate:
    """Record a per-obligation cache outcome (``"reused"``/``"rechecked"``).

    Obs-gated like :func:`stamp_cache_status`.  A reused obligation
    certificate skipped its checker's :func:`stamp_provenance` call (it
    was loaded stripped), so the ledger note happens here for that case
    only — a rechecked one was already noted by its checker.
    """
    if status == "reused":
        note_certificate(cert)
    if not obs_enabled():
        return cert
    provenance = dict(cert.provenance or {"rule": cert.rule, "judgment": cert.judgment})
    record: Dict[str, Any] = {"status": status, "exact": exact}
    if key is not None:
        record["key"] = key[:16]
    provenance["incremental"] = record
    cert.provenance = provenance
    return cert


def stamp_cache_status(
    cert: Certificate,
    status: str,
    key: Optional[str] = None,
    workers: Optional[int] = None,
) -> Certificate:
    """Record the certificate cache outcome (``"hit"``/``"miss"``).

    Obs-gated like :func:`stamp_provenance`.  On a miss the checker has
    already stamped full provenance and this merely annotates it; on a
    hit the loaded certificate is provenance-free (cached certificates
    are stored stripped) and gains a minimal record, since the
    enumeration the original provenance described did not happen in
    this run.  Cache hits skip the checker's :func:`stamp_provenance`
    call entirely, so the ledger note happens here too (obs-off safe,
    never mutating).
    """
    note_certificate(cert)
    if not obs_enabled():
        return cert
    provenance = dict(cert.provenance or {"rule": cert.rule, "judgment": cert.judgment})
    provenance["cache"] = status
    if key is not None:
        provenance["cache_key"] = key[:16]
    if workers is not None:
        provenance["workers"] = workers
    cert.provenance = provenance
    return cert


def stamp_lint(cert: Certificate, report: Any) -> Certificate:
    """Record a lint pre-pass report in certificate provenance.

    Obs-gated like :func:`stamp_provenance`, so obs-off certificate
    bytes stay identical whether or not the lint pass ran.  ``report``
    is a :class:`repro.analysis.findings.LintReport` (duck-typed on
    ``to_provenance``); ``None`` is a no-op.
    """
    if report is None or not obs_enabled():
        return cert
    provenance = dict(cert.provenance or {"rule": cert.rule, "judgment": cert.judgment})
    provenance["lint"] = report.to_provenance()
    cert.provenance = provenance
    return cert


@dataclass
class InterfaceSim:
    """The judgment ``L ≤_R L'`` (strategy simulation between interfaces),
    used as a premise of the weakening rule ``Wk``."""

    low: LayerInterface
    high: LayerInterface
    relation: SimRel
    certificate: Certificate

    def __post_init__(self):
        self.certificate.require_ok()

    @property
    def judgment(self) -> str:
        return f"{self.low.name} ≤_{self.relation.name} {self.high.name}"

    def __repr__(self):
        return f"InterfaceSim({self.judgment})"
