"""The concurrent layer calculus (paper Fig. 9).

Each rule of the calculus is a function that checks its premises and
constructs the conclusion as a :class:`CertifiedLayer`.  The functions
raise :class:`~repro.core.errors.ComposeError` on structural mismatch and
:class:`~repro.core.errors.VerificationError` when a semantic premise
fails its check, so an ill-formed judgment can never be produced:

* ``empty_rule`` — ``L[A] ⊢_id ∅ : L[A]``
* ``fun_rule`` — ``LκM_{L[c]} ≤_R σ  ⟹  L[c] ⊢_id (i ↦ κ) : (i ↦ σ)``
* ``vcomp`` — vertical composition through a shared middle interface
* ``hcomp`` — horizontal composition of same-level siblings
* ``weaken`` (Wk) — pre/post interface simulation
* ``check_compat_interfaces`` (Compat) — rely/guarantee compatibility
* ``pcomp`` — parallel composition over disjoint focused sets
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from ..obs import obs_enabled, span
from ..obs.coverage import CoverageBuilder
from ..obs.metrics import MetricsWindow, inc, observe
from ..parallel.cache import cache_enabled, cached_certificate
from ..parallel.pool import get_jobs
from ..reduce import reduce_active, reduction_collector, resolve_reduce
from .certificate import (
    Certificate,
    CertifiedLayer,
    InterfaceSim,
    stamp_lint,
    stamp_provenance,
)
from .errors import ComposeError
from .interface import LayerInterface
from .log import Log
from .module import FuncImpl, Module
from .relation import ID_REL, SimRel
from .rely_guarantee import check_compat
from .simulation import (
    Scenario,
    SimConfig,
    check_scenarios,
    check_sim,
    prim_player,
    scenario_impl_player,
    scenario_spec_player,
)


def _rule_span(rule: str, **args):
    """Span + counters for one calculus-rule application (obs-gated)."""
    inc("calculus.rules_applied")
    inc(f"calculus.rule.{rule}")
    return span(f"rule.{rule}", category="calculus", **args)


def _stamp_rule(cert: Certificate, rule: str, started: float,
                window: MetricsWindow, **extra) -> None:
    elapsed = time.perf_counter() - started
    if obs_enabled():
        observe(f"calculus.rule_wall_s.{rule}", elapsed)
    stamp_provenance(cert, elapsed, window, **extra)


def _lint_gate(
    rule: str,
    judgment: str,
    lint: Optional[str],
    *,
    underlay=None,
    module=None,
    overlay=None,
    relation=None,
    interfaces=(),
):
    """Run the static pre-pass over the rule's inputs (ISSUE 5).

    Mode resolution (explicit ``lint=`` argument, then the
    ``REPRO_LINT`` env var, then ``record``) lives in
    :mod:`repro.analysis.linter`.  In ``strict`` mode, unsuppressed
    ERROR findings refuse the judgment up front: a failing certificate
    carrying one obligation per finding is raised via
    :class:`~repro.core.errors.VerificationError` *before* the
    certificate cache is consulted, so a statically ill-formed
    application is refused cold and warm alike.  In ``record`` mode the
    report is returned for provenance stamping; ``off`` skips the pass.
    """
    from ..analysis.linter import lint_rule_inputs, resolve_mode
    from ..analysis.rules import RULESET_VERSION

    mode = resolve_mode(lint)
    if mode == "off":
        return None
    report = lint_rule_inputs(
        mode=mode,
        underlay=underlay,
        module=module,
        overlay=overlay,
        relation=relation,
        interfaces=interfaces,
    )
    inc("lint.runs")
    if report.findings:
        inc("lint.findings", len(report.findings))
    if mode == "strict" and report.errors:
        cert = Certificate(
            judgment=judgment,
            rule=rule,
            bounds={"lint_ruleset": RULESET_VERSION, "lint_mode": mode},
        )
        for f in report.errors:
            cert.add(
                f"lint {f.rule_id} clean",
                False,
                f.render(),
                evidence={"lint_finding": f.to_dict()},
            )
        stamp_lint(cert, report)
        cert.require_ok()
    return report


def module_rule(
    underlay: LayerInterface,
    module: Module,
    overlay: LayerInterface,
    relation: SimRel,
    tid: int,
    scenarios: Sequence[Scenario],
    jobs: Optional[int] = None,
    lint: Optional[str] = None,
    reduce: Optional[Any] = None,
) -> CertifiedLayer:
    """``Fun`` generalized to a whole module via protocol scenarios.

    Primitives with protocol preconditions (release needs a prior
    acquire) are certified through scenarios: every protocol-respecting
    call sequence supplied is checked implementation-vs-specification
    under all bounded environment behaviours.  Each module function must
    be exercised by at least one scenario and have a specification in
    the overlay.

    Structural pre-checks (scenario coverage, overlay specs) run before
    the certificate cache is consulted, so a malformed application
    raises :class:`ComposeError` cold or warm; cached *failing*
    certificates likewise re-raise through ``CertifiedLayer``'s
    ``require_ok``, which runs outside the cached computation.
    """
    started = time.perf_counter()
    window = MetricsWindow()
    with _rule_span("Fun*", module=module.name, overlay=overlay.name):
        covered = {name for s in scenarios for name, _ in s.calls}
        for name in module.names():
            if name not in covered:
                raise ComposeError(f"module function {name!r} not covered by any scenario")
            if not overlay.has(name):
                raise ComposeError(f"overlay {overlay.name} lacks a spec for {name!r}")
        judgment = (
            f"{underlay.name}[{tid}] ⊢_{relation.name} {module.name} : "
            f"{overlay.name}[{tid}]"
        )
        lint_report = _lint_gate(
            "Fun*", judgment, lint,
            underlay=underlay, module=module, overlay=overlay,
            relation=relation, interfaces=(underlay, overlay),
        )
        axes = resolve_reduce(reduce)
        obligation_key = None
        if cache_enabled():
            from ..analysis.slices import scenario_obligation_key

            def obligation_key(scenario: Scenario) -> Any:
                return scenario_obligation_key(
                    kind="Fun*", rule="Fun*", judgment=judgment,
                    low=underlay, high=overlay, relation=relation, tid=tid,
                    scenario=scenario, axes=axes, module=module,
                )

        def compute() -> Certificate:
            with reduce_active(axes):
                cert = check_scenarios(
                    underlay,
                    lambda scenario: scenario_impl_player(module, scenario),
                    overlay,
                    relation,
                    tid,
                    scenarios,
                    judgment=judgment,
                    rule="Fun*",
                    jobs=jobs,
                    obligation_key=obligation_key,
                )
            _stamp_rule(
                cert, "Fun*", started, window,
                module=module.name,
                functions=sorted(module.names()),
                scenarios=len(scenarios),
                workers=get_jobs(jobs),
            )
            return cert

        cert = cached_certificate(
            "Fun*",
            (underlay, module, overlay, relation, tid, tuple(scenarios),
             ("reduce", tuple(sorted(axes)))),
            compute,
            jobs=jobs,
        )
        stamp_lint(cert, lint_report)
        layer = CertifiedLayer(underlay, module, overlay, relation, {tid}, cert)
    return layer


def interface_sim_rule(
    low: LayerInterface,
    high: LayerInterface,
    relation: SimRel,
    tid: int,
    scenarios: Sequence[Scenario],
    jobs: Optional[int] = None,
    lint: Optional[str] = None,
    reduce: Optional[Any] = None,
) -> InterfaceSim:
    """Establish ``L ≤_R L'`` via protocol scenarios (a ``Wk`` premise).

    Both sides run the *same* primitive call sequences — the low
    interface's strategies against the high interface's — under all
    bounded environment behaviours, related by ``R``.  This is the
    log-lift step: e.g. ``L_lock_low[i] ≤_{R_lock} L_lock[i]``.

    Cache-aware like :func:`module_rule`: the :class:`InterfaceSim`
    wrapper (and its ``require_ok``) is built outside the cached
    computation, so cached failing certificates raise identically warm.
    """
    started = time.perf_counter()
    window = MetricsWindow()
    with _rule_span("interface-sim", low=low.name, high=high.name):
        lint_report = _lint_gate(
            "interface-sim",
            f"{low.name} \u2264_{relation.name} {high.name}",
            lint,
            relation=relation,
            interfaces=(low, high),
        )
        axes = resolve_reduce(reduce)
        obligation_key = None
        if cache_enabled():
            from ..analysis.slices import scenario_obligation_key

            def obligation_key(scenario: Scenario) -> Any:
                return scenario_obligation_key(
                    kind="interface-sim", rule="interface-sim",
                    judgment=f"{low.name} ≤_{relation.name} {high.name}",
                    low=low, high=high, relation=relation, tid=tid,
                    scenario=scenario, axes=axes,
                )

        def compute() -> Certificate:
            with reduce_active(axes):
                cert = check_scenarios(
                    low,
                    scenario_spec_player,  # low side also just calls its primitives
                    high,
                    relation,
                    tid,
                    scenarios,
                    judgment=f"{low.name} ≤_{relation.name} {high.name}",
                    rule="interface-sim",
                    jobs=jobs,
                    obligation_key=obligation_key,
                )
            _stamp_rule(
                cert, "interface-sim", started, window,
                scenarios=len(scenarios),
                workers=get_jobs(jobs),
            )
            return cert

        cert = cached_certificate(
            "interface-sim",
            (low, high, relation, tid, tuple(scenarios),
             ("reduce", tuple(sorted(axes)))),
            compute,
            jobs=jobs,
        )
        stamp_lint(cert, lint_report)
        sim = InterfaceSim(low, high, relation, cert)
    return sim


def empty_rule(interface: LayerInterface, focused: Iterable[int]) -> CertifiedLayer:
    """``Empty``: the empty module implements any interface over itself."""
    started = time.perf_counter()
    window = MetricsWindow()
    with _rule_span("Empty", interface=interface.name):
        cert = Certificate(
            judgment=f"{interface.name} ⊢_id ∅ : {interface.name}",
            rule="Empty",
        )
        cert.add("empty module", True)
        layer = CertifiedLayer(
            interface, Module.empty(), interface, ID_REL, focused, cert
        )
    _stamp_rule(cert, "Empty", started, window)
    return layer


def fun_rule(
    underlay: LayerInterface,
    impl: FuncImpl,
    overlay: LayerInterface,
    relation: SimRel,
    tid: int,
    config: SimConfig,
    jobs: Optional[int] = None,
    lint: Optional[str] = None,
    reduce: Optional[Any] = None,
) -> CertifiedLayer:
    """``Fun``: certify one function against its overlay specification.

    Checks ``LκM_{L[tid]} ≤_R σ`` where ``κ`` is ``impl`` run over the
    underlay and ``σ`` is the primitive named ``impl.name`` in the
    overlay.  This single rule covers both of the paper's leaf patterns:
    *fun-lift* (code to low-level strategy, usually ``R = id``) and
    *log-lift* (low-level strategy to atomic strategy, ``R`` merging
    events) — the pattern is decided by the relation and the overlay
    spec, not by the rule.
    """
    started = time.perf_counter()
    window = MetricsWindow()
    with _rule_span("Fun", function=impl.name, overlay=overlay.name):
        if not overlay.has(impl.name):
            raise ComposeError(
                f"overlay {overlay.name} has no specification for {impl.name!r}"
            )
        judgment = (
            f"{underlay.name}[{tid}] \u22a2_{relation.name} "
            f"{impl.name} : {overlay.name}.{impl.name}"
        )
        lint_report = _lint_gate(
            "Fun", judgment, lint,
            underlay=underlay, module=Module.single(impl), overlay=overlay,
            relation=relation, interfaces=(underlay, overlay),
        )
        axes = resolve_reduce(reduce)
        obligation_key = None
        if cache_enabled():
            from ..analysis.slices import sim_args_obligation_key

            def obligation_key(args: Tuple[Any, ...]) -> Any:
                return sim_args_obligation_key(
                    kind="Fun", judgment=judgment,
                    low=underlay, high=overlay, name=impl.name,
                    relation=relation, tid=tid, config=config, args=args,
                    axes=axes, impl=impl,
                )

        def compute() -> Certificate:
            with reduce_active(axes):
                cert = check_sim(
                    underlay,
                    impl.player,
                    overlay,
                    prim_player(impl.name),
                    relation,
                    tid,
                    config,
                    judgment=judgment,
                    rule="Fun",
                    jobs=jobs,
                    obligation_key=obligation_key,
                )
            _stamp_rule(
                cert, "Fun", started, window,
                function=impl.name, lang=impl.lang, workers=get_jobs(jobs),
            )
            return cert

        cert = cached_certificate(
            "Fun",
            (underlay, impl, overlay, relation, tid, config,
             ("reduce", tuple(sorted(axes)))),
            compute,
            jobs=jobs,
        )
        stamp_lint(cert, lint_report)
        layer = CertifiedLayer(
            underlay, Module.single(impl), overlay, relation, {tid}, cert
        )
    return layer


def vcomp(lower: CertifiedLayer, upper: CertifiedLayer) -> CertifiedLayer:
    """``Vcomp``: stack two certified layers through their shared middle.

    ``L1 ⊢_R M : L2`` and ``L2 ⊢_S N : L3`` give
    ``L1 ⊢_{R∘S} M ⊕ N : L3``.
    """
    started = time.perf_counter()
    window = MetricsWindow()
    with _rule_span(
        "Vcomp", lower=lower.module.name, upper=upper.module.name
    ):
        if lower.overlay is not upper.underlay and not _same_interface(
            lower.overlay, upper.underlay
        ):
            raise ComposeError(
                f"vertical composition mismatch: {lower.overlay.name} vs "
                f"{upper.underlay.name}"
            )
        if lower.focused != upper.focused:
            raise ComposeError(
                f"focused-set mismatch: {sorted(lower.focused)} vs "
                f"{sorted(upper.focused)}"
            )
        relation = lower.relation.compose(upper.relation)
        cert = Certificate(
            judgment=(
                f"{lower.underlay.name} ⊢_{relation.name} "
                f"{lower.module.name} ⊕ {upper.module.name} : {upper.overlay.name}"
            ),
            rule="Vcomp",
            children=[lower.certificate, upper.certificate],
        )
        cert.add("middle interfaces agree", True)
        layer = CertifiedLayer(
            lower.underlay,
            lower.module.oplus(upper.module),
            upper.overlay,
            relation,
            lower.focused,
            cert,
        )
    _stamp_rule(cert, "Vcomp", started, window, middle=lower.overlay.name)
    return layer


def hcomp(
    left: CertifiedLayer,
    right: CertifiedLayer,
    overlay: Optional[LayerInterface] = None,
) -> CertifiedLayer:
    """``Hcomp``: combine independent same-level modules.

    Both layers must share the underlay and the simulation relation; the
    combined overlay merges the two primitive collections and must carry
    the same rely/guarantee as both sides (checked structurally).
    """
    started = time.perf_counter()
    window = MetricsWindow()
    with _rule_span(
        "Hcomp", left=left.module.name, right=right.module.name
    ):
        if left.underlay is not right.underlay and not _same_interface(
            left.underlay, right.underlay
        ):
            raise ComposeError(
                f"horizontal composition needs a common underlay: "
                f"{left.underlay.name} vs {right.underlay.name}"
            )
        if left.focused != right.focused:
            raise ComposeError("horizontal composition needs equal focused sets")
        if left.relation.name != right.relation.name:
            raise ComposeError(
                f"horizontal composition needs one relation: "
                f"{left.relation.name} vs {right.relation.name}"
            )
        merged = overlay or left.overlay.merge_prims(right.overlay)
        for name in list(left.overlay.prims) + list(right.overlay.prims):
            if not merged.has(name):
                raise ComposeError(f"merged overlay lost primitive {name!r}")
        cert = Certificate(
            judgment=(
                f"{left.underlay.name} ⊢_{left.relation.name} "
                f"{left.module.name} ⊕ {right.module.name} : {merged.name}"
            ),
            rule="Hcomp",
            children=[left.certificate, right.certificate],
        )
        cert.add("disjoint modules", not set(left.module.names()) & set(right.module.names()))
        layer = CertifiedLayer(
            left.underlay,
            left.module.oplus(right.module),
            merged,
            left.relation,
            left.focused,
            cert,
        )
    _stamp_rule(cert, "Hcomp", started, window, merged_overlay=merged.name)
    return layer


def weaken(
    layer: CertifiedLayer,
    pre: Optional[InterfaceSim] = None,
    post: Optional[InterfaceSim] = None,
) -> CertifiedLayer:
    """``Wk``: strengthen the underlay and/or weaken the overlay.

    ``L1' ≤_R L1``, ``L1 ⊢_S M : L2``, ``L2 ≤_T L2'`` give
    ``L1' ⊢_{R∘S∘T} M : L2'``.  Either side may be omitted.
    """
    started = time.perf_counter()
    window = MetricsWindow()
    with _rule_span("Wk", module=layer.module.name):
        underlay = layer.underlay
        overlay = layer.overlay
        relation: SimRel = layer.relation
        children: List[Certificate] = [layer.certificate]
        if pre is not None:
            if not _same_interface(pre.high, layer.underlay):
                raise ComposeError(
                    f"pre-simulation target {pre.high.name} is not the underlay "
                    f"{layer.underlay.name}"
                )
            underlay = pre.low
            relation = pre.relation.compose(relation)
            children.append(pre.certificate)
        if post is not None:
            if not _same_interface(post.low, layer.overlay):
                raise ComposeError(
                    f"post-simulation source {post.low.name} is not the overlay "
                    f"{layer.overlay.name}"
                )
            overlay = post.high
            relation = relation.compose(post.relation)
            children.append(post.certificate)
        cert = Certificate(
            judgment=(
                f"{underlay.name} ⊢_{relation.name} {layer.module.name} : "
                f"{overlay.name}"
            ),
            rule="Wk",
            children=children,
        )
        cert.add("weakening premises certified", True)
        weakened = CertifiedLayer(
            underlay, layer.module, overlay, relation, layer.focused, cert
        )
    _stamp_rule(
        cert, "Wk", started, window,
        pre=pre.low.name if pre is not None else None,
        post=post.high.name if post is not None else None,
    )
    return weakened


def check_compat_interfaces(
    iface: LayerInterface,
    tids_a: Iterable[int],
    tids_b: Iterable[int],
    universe: Iterable[Log],
    reduce: Optional[Any] = None,
) -> Certificate:
    """``Compat``: check ``compat(L[A], L[B], L[A∪B])`` over a log universe.

    The interface value is shared (our interfaces are not specialized per
    focused set), so ``L[A∪B].L = L[A].L = L[B].L`` holds by construction;
    what remains is the rely/guarantee cross-implication, checked on every
    log in the universe (see DESIGN.md §4 for the coverage caveat).
    """
    started = time.perf_counter()
    window = MetricsWindow()
    tids_a = sorted(set(tids_a))
    tids_b = sorted(set(tids_b))
    universe = list(universe)
    axes = resolve_reduce(reduce)

    def compute() -> Certificate:
        cert = Certificate(
            judgment=f"compat({iface.name}[{tids_a}], {iface.name}[{tids_b}])",
            rule="Compat",
            bounds={"universe_size": len(universe)},
        )
        with _rule_span(
            "Compat", interface=iface.name, universe=len(universe)
        ), reduce_active(axes), reduction_collector(axes) as red_stats:
            if set(tids_a) & set(tids_b):
                cert.add("A ⊥ B", False, f"overlap: {set(tids_a) & set(tids_b)}")
                return cert
            cert.add("A ⊥ B", True)
            inc("compat.logs_checked", len(universe))
            failures = check_compat(
                iface.rely, iface.guar, tids_a, iface.rely, iface.guar, tids_b,
                universe,
            )
            if failures:
                for failure in failures:
                    cert.add("G ⊇ R implication", False, failure)
            else:
                cert.add("G ⊇ R implications on universe", True)
        extra = dict(universe_size=len(universe), tids_a=tids_a, tids_b=tids_b)
        compat_reduction = red_stats.as_dict()
        if compat_reduction:
            extra["reduction"] = compat_reduction
        if obs_enabled():
            # The Compat rule's enumeration axis is the log universe itself:
            # the rely/guarantee cross-implication is only checked on logs
            # actually encountered while certifying the premises (DESIGN.md
            # §4's coverage caveat, now stated in the certificate).
            cov = CoverageBuilder("compat.log_universe", budget=len(universe))
            cov.visit(n=len(universe))
            cov.distinct = len(set(universe))
            extra["coverage"] = {"compat.log_universe": cov.record()}
        _stamp_rule(cert, "Compat", started, window, **extra)
        return cert

    return cached_certificate(
        "Compat",
        (iface, tuple(tids_a), tuple(tids_b), tuple(universe),
         ("reduce", tuple(sorted(axes)))),
        compute,
    )


def pcomp(
    left: CertifiedLayer,
    right: CertifiedLayer,
    universe: Optional[Sequence[Log]] = None,
) -> CertifiedLayer:
    """``Pcomp``: parallel composition over disjoint focused sets.

    Premises: the same module certified over ``A`` and over ``B`` with the
    same relation; ``compat`` for both the underlay and overlay
    interfaces.  The conclusion focuses ``A ∪ B``.
    """
    started = time.perf_counter()
    window = MetricsWindow()
    with _rule_span(
        "Pcomp",
        module=left.module.name,
        left=sorted(left.focused),
        right=sorted(right.focused),
    ):
        if left.focused & right.focused:
            raise ComposeError(
                f"parallel composition needs disjoint focused sets: "
                f"{sorted(left.focused)} vs {sorted(right.focused)}"
            )
        if set(left.module.names()) != set(right.module.names()):
            raise ComposeError(
                "parallel composition needs the same module on both sides"
            )
        if left.relation.name != right.relation.name:
            raise ComposeError(
                "parallel composition needs the same simulation relation"
            )
        if not _same_interface(left.underlay, right.underlay) or not _same_interface(
            left.overlay, right.overlay
        ):
            raise ComposeError(
                "parallel composition needs identical interfaces on both sides"
            )
        if universe is None:
            universe = list(left.certificate.all_logs()) + list(
                right.certificate.all_logs()
            )
        compat_under = check_compat_interfaces(
            left.underlay, left.focused, right.focused, universe
        )
        compat_over = check_compat_interfaces(
            left.overlay, left.focused, right.focused, universe
        )
        focused = left.focused | right.focused
        cert = Certificate(
            judgment=(
                f"{left.underlay.name}[{sorted(focused)}] ⊢_{left.relation.name} "
                f"{left.module.name} : {left.overlay.name}[{sorted(focused)}]"
            ),
            rule="Pcomp",
            children=[
                left.certificate,
                right.certificate,
                compat_under,
                compat_over,
            ],
            bounds={"universe_size": len(universe)},
        )
        cert.add("disjoint focused sets", True)
        layer = CertifiedLayer(
            left.underlay,
            left.module,
            left.overlay,
            left.relation,
            focused,
            cert,
        )
    _stamp_rule(
        cert, "Pcomp", started, window,
        universe_size=len(universe),
        focused=sorted(focused),
    )
    return layer


def pcomp_all(layers: Sequence[CertifiedLayer]) -> CertifiedLayer:
    """Fold :func:`pcomp` over per-participant certified layers.

    The paper composes all CPUs of the machine this way to reach
    ``L[D]`` before applying the soundness theorem (Fig. 5).
    """
    if not layers:
        raise ComposeError("pcomp_all needs at least one layer")
    result = layers[0]
    for layer in layers[1:]:
        result = pcomp(result, layer)
    return result


def _same_interface(a: LayerInterface, b: LayerInterface) -> bool:
    """Structural interface agreement for rule side conditions."""
    return (
        a is b
        or (
            a.name == b.name
            and a.domain == b.domain
            and set(a.prims) == set(b.prims)
            and all(a.prims[k] is b.prims[k] for k in a.prims)
        )
    )
