"""Environment contexts: the strategies of everyone *not* focused.

When a layer machine focuses on a participant set ``A``, all behaviour of
the scheduler and of participants outside ``A`` is encapsulated in an
*environment context* ``E`` (paper §2, §3.2).  At each query point the
machine asks ``E`` for events until control is back in ``A`` — the paper
writes ``E[A, l]`` for that whole extension process.

Concrete environment contexts here:

* :class:`NullEnv` — the empty environment (sequential runs).
* :class:`ScriptedEnv` — replays a fixed list of event batches, one batch
  per query point.  Def. 2.1 quantifies over environmental *event
  sequences*; scripted environments are exactly those sequences.
* :class:`ChoiceEnv` — a scripted environment driven by an explicit
  choice sequence over an alphabet; the simulation checker uses it to
  enumerate all environment behaviours to a bounded depth (DFS over
  choices), recording how many choices each run consumed.
* :class:`StrategyEnv` — a genuine game-semantic environment: a scheduler
  strategy plus per-participant strategies that compute events from the
  current log.

All environments are single-use (they carry a cursor); ``fresh()``
produces a reset copy so one description can drive many runs.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import RelyViolation
from .events import Event, hw_sched
from .log import Log, LogBuffer

Batch = Tuple[Event, ...]


class EnvContext:
    """Interface for environment contexts."""

    def advance(self, buffer: LogBuffer, focused_tid: int, ctx=None) -> Batch:
        """Append this query point's environment events to the buffer.

        Returns the batch appended (possibly empty).  Called exactly once
        per query point of the focused player.  ``ctx`` is the focused
        player's execution context (call-aware environments read its
        ``scenario_call``).
        """
        raise NotImplementedError

    def fresh(self) -> "EnvContext":
        raise NotImplementedError


class NullEnv(EnvContext):
    """The environment that never produces events (sequential execution)."""

    def advance(self, buffer: LogBuffer, focused_tid: int, ctx=None) -> Batch:
        return ()

    def fresh(self) -> "NullEnv":
        return NullEnv()

    def __repr__(self):
        return "NullEnv()"


class ScriptedEnv(EnvContext):
    """Replay a fixed sequence of event batches, one per query point.

    After the script is exhausted the environment goes idle (empty
    batches), modelling "it then becomes idle and will not produce any
    more events" (§2).
    """

    def __init__(self, batches: Sequence[Batch], transform=None):
        self.batches: List[Batch] = [tuple(batch) for batch in batches]
        self.cursor = 0
        #: Optional lowering applied at delivery time: ``transform(batch,
        #: log)`` — used by stateful simulation relations whose witness
        #: events depend on the low-level log so far.
        self.transform = transform

    def advance(self, buffer: LogBuffer, focused_tid: int, ctx=None) -> Batch:
        if self.cursor >= len(self.batches):
            return ()
        batch = self.batches[self.cursor]
        self.cursor += 1
        if self.transform is not None:
            batch = tuple(self.transform(batch, buffer.snapshot()))
        buffer.extend(batch)
        return batch

    def fresh(self) -> "ScriptedEnv":
        return ScriptedEnv(self.batches, self.transform)

    def consumed(self) -> int:
        return self.cursor

    def __repr__(self):
        return f"ScriptedEnv({self.batches!r}@{self.cursor})"


class ChoiceEnv(EnvContext):
    """An environment driven by an explicit choice sequence.

    ``alphabet`` is the set of batches the environment may produce at any
    query point (derived from the rely condition: what other participants
    are allowed to do).  ``choices`` indexes into the alphabet, one index
    per query point.  When the choice sequence runs out the environment
    reports it via :attr:`exhausted_at` and produces empty batches — the
    DFS in :mod:`repro.core.simulation` uses that signal to extend the
    choice prefix and re-run.
    """

    def __init__(self, alphabet: Sequence[Batch], choices: Sequence[int]):
        self.alphabet: List[Batch] = [tuple(b) for b in alphabet]
        self.choices: Tuple[int, ...] = tuple(choices)
        self.cursor = 0
        self.exhausted_at: Optional[int] = None

    def advance(self, buffer: LogBuffer, focused_tid: int, ctx=None) -> Batch:
        if self.cursor >= len(self.choices):
            if self.exhausted_at is None:
                self.exhausted_at = self.cursor
            self.cursor += 1
            return ()
        batch = self.alphabet[self.choices[self.cursor]]
        self.cursor += 1
        buffer.extend(batch)
        return batch

    def fresh(self) -> "ChoiceEnv":
        return ChoiceEnv(self.alphabet, self.choices)

    def __repr__(self):
        return f"ChoiceEnv(|Σ|={len(self.alphabet)}, choices={self.choices})"


class StrategyEnv(EnvContext):
    """A game-semantic environment: scheduler + participant strategies.

    ``strategies`` maps each environment participant id to a function
    ``Log -> tuple[Event, ...]`` (its next move given the current log —
    the paper's ``φ_i(l)``).  ``schedule`` is the scheduler strategy: a
    function ``Log -> int`` picking who moves next.  ``advance`` loops:
    pick a participant; if focused, emit the scheduling event and stop;
    otherwise append that participant's move and continue.  ``max_moves``
    bounds the loop (the fairness assumption: a fair scheduler hands
    control back within finitely many steps).
    """

    def __init__(
        self,
        strategies: Dict[int, Callable[[Log], Batch]],
        schedule: Callable[[Log], int],
        max_moves: int = 64,
        record_sched: bool = False,
    ):
        self.strategies = dict(strategies)
        self.schedule = schedule
        self.max_moves = max_moves
        self.record_sched = record_sched

    def advance(self, buffer: LogBuffer, focused_tid: int, ctx=None) -> Batch:
        appended: List[Event] = []
        for _ in range(self.max_moves):
            log = buffer.snapshot()
            who = self.schedule(log)
            if who == focused_tid or who not in self.strategies:
                if self.record_sched:
                    event = hw_sched(focused_tid)
                    buffer.append(event)
                    appended.append(event)
                return tuple(appended)
            move = tuple(self.strategies[who](log))
            buffer.extend(move)
            appended.extend(move)
        raise RelyViolation(
            f"environment scheduler failed to return control to {focused_tid} "
            f"within {self.max_moves} moves (unfair scheduler)"
        )

    def fresh(self) -> "StrategyEnv":
        return StrategyEnv(
            self.strategies, self.schedule, self.max_moves, self.record_sched
        )


class CallScriptedEnv(EnvContext):
    """Deliver witness batches aligned to scenario call boundaries.

    ``groups[k]`` is the (already concretized) batch group recorded
    during call ``k`` of the high-level run.  It is delivered at the
    first query point the low-level player reaches *within call k* — not
    eagerly at whatever query point comes next, which would let the
    witness environment act in the middle of the implementation's spin
    loop and produce an unrelated interleaving.  Undelivered earlier
    groups are flushed first, preserving order.
    """

    def __init__(self, groups: Sequence[Batch], transform=None):
        self.groups: List[Batch] = [tuple(g) for g in groups]
        self.delivered = 0
        self.transform = transform

    def advance(self, buffer: LogBuffer, focused_tid: int, ctx=None) -> Batch:
        call = getattr(ctx, "scenario_call", 0) if ctx is not None else 0
        out: List[Event] = []
        while self.delivered <= call and self.delivered < len(self.groups):
            group = self.groups[self.delivered]
            if self.transform is not None:
                # Deliver-then-lower group by group so each lowered group
                # sees the effects of the previous ones.
                buffer.extend(())  # no-op; keep snapshot fresh semantics
                lowered = tuple(self.transform(group, buffer.snapshot()))
                buffer.extend(lowered)
                out.extend(lowered)
            else:
                buffer.extend(group)
                out.extend(group)
            self.delivered += 1
        return tuple(out)

    def fresh(self) -> "CallScriptedEnv":
        return CallScriptedEnv(self.groups, self.transform)

    def __repr__(self):
        return f"CallScriptedEnv({len(self.groups)} groups@{self.delivered})"


class RecordingEnv(EnvContext):
    """Wrap an environment and record the batch delivered at each query."""

    def __init__(self, inner: EnvContext):
        self.inner = inner
        self.batches: List[Batch] = []

    def advance(self, buffer: LogBuffer, focused_tid: int, ctx=None) -> Batch:
        batch = self.inner.advance(buffer, focused_tid, ctx)
        self.batches.append(batch)
        return batch

    def fresh(self) -> "RecordingEnv":
        return RecordingEnv(self.inner.fresh())


def validate_env_batches(batches: Iterable[Batch], rely, base_log: Log) -> bool:
    """Check a sequence of environment batches against a rely condition.

    Builds up the log from ``base_log`` and checks every per-participant
    rely invariant on each prefix — the executable version of "the rely
    condition specifies a set of valid environment contexts, which take
    valid input logs and return a valid list of events" (§3.2).
    """
    log = base_log
    for batch in batches:
        for event in batch:
            log = log.append(event)
            if not rely.condition(event.tid).holds(log):
                return False
    return True


def round_robin_schedule(order: Sequence[int]) -> Callable[[Log], int]:
    """A scheduler strategy cycling through ``order`` based on log length."""
    order = list(order)

    def schedule(log: Log) -> int:
        return order[len(log) % len(order)]

    return schedule
