"""Multithreaded layer interfaces ``L[c][Ta]`` (paper §5.2).

"Let Tc denote the whole thread set running over CPU c.  Based upon
L[c], we construct a multithreaded layer interface L[c][Ta] :=
(L[c].L, L[c].R ∪ R^{Ta}, L[c].G|Ta), parameterized over a focused
thread set Ta ⊆ Tc."

This module assembles the full thread-layer tower used by the upper
objects (queuing locks, condition variables, IPC):

* :func:`build_thread_underlay` — the composition of the certified lower
  stacks: atomic spinlocks (``L_lock``) + atomic shared queues
  (``L_q_high``) over ``Lx86``.  In the paper this interface is *derived*
  by ``Vcomp`` from the lock and queue certifications; here the same
  interface value is produced directly and the derivation is exercised by
  the Fig. 5 pipeline benchmarks.
* :func:`build_lbtd` — ``Lbtd[c]``: scheduling primitives implemented
  over the queues (queue traffic visible in the log).
* :func:`build_lhtd` — ``Lhtd[c][Ta]``: the atomic scheduling overlay
  (one event per scheduling primitive; queues hidden), with the focused
  thread set expressed through rely/guarantee restriction exactly as in
  the paper: relies extended with the thread context's validity,
  guarantees restricted to the focused set.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.interface import LayerInterface, Prim
from ..core.machint import UINT32, IntWidth
from ..core.rely_guarantee import Guarantee, Rely
from ..machine.cpu_local import lx86_interface
from ..objects.sched import CpuMap, sched_interface
from ..objects.shared_queue import (
    q_alloc_prim,
    queue_atomic_interface,
    queue_wellformed_inv,
)
from ..objects.ticket_lock import (
    lock_atomic_interface,
    lock_guarantee,
    lock_rely,
)

ATOMIC_HIDE = ["fai", "aload", "astore", "cas", "swap", "pull", "push"]


def initial_ready_log(cpus: CpuMap, init_current: Dict[int, int]):
    """Boot-time log prefix: every non-running thread sits in its CPU's
    ready queue (kernel thread spawn, modelled as initial enqueues)."""
    from ..core.events import ENQ, Event
    from ..objects.sched import rdq

    events = []
    for cpu in cpus.cpus:
        for tid in cpus.threads_on(cpu):
            if tid != init_current[cpu]:
                events.append(Event(tid, ENQ, (rdq(cpu), tid)))
    return tuple(events)


def build_thread_underlay(
    thread_domain: Iterable[int],
    locks: Sequence[Any] = (),
    queues: Sequence[Any] = (),
    width: IntWidth = UINT32,
    capacity: int = 64,
    name: str = "L_lock+q",
) -> LayerInterface:
    """Atomic locks + atomic queues over ``Lx86`` — the §4 output.

    The participant domain is the *thread* domain: at the multithreaded
    layers every event is attributed to a thread (the per-CPU attribution
    of the lower layers is recovered through the CPU map).
    """
    all_locks = list(locks)
    rely = lock_rely(thread_domain, all_locks) if all_locks else Rely()
    guar = lock_guarantee(thread_domain, all_locks) if all_locks else Guarantee()
    base = lx86_interface(thread_domain, width=width, rely=rely, guar=guar)
    layered = lock_atomic_interface(base, name=name, hide=ATOMIC_HIDE)
    layered = layered.extend(name, [q_alloc_prim(capacity)])
    layered = queue_atomic_interface(layered, name=name)
    return layered


def build_lbtd(
    cpus: CpuMap,
    init_current: Dict[int, int],
    locks: Sequence[Any] = (),
    name: str = "Lbtd",
    capacity: int = 64,
) -> LayerInterface:
    """``Lbtd[c]``: scheduling primitives as queue-level implementations."""
    underlay = build_thread_underlay(
        sorted(cpus.assignment), locks=locks, capacity=capacity
    )
    underlay = underlay.with_init_log(initial_ready_log(cpus, init_current))
    return sched_interface(
        underlay, cpus, init_current, name=name, atomic=False
    )


def build_lhtd(
    cpus: CpuMap,
    init_current: Dict[int, int],
    locks: Sequence[Any] = (),
    name: str = "Lhtd",
    capacity: int = 64,
    hide_queues: bool = True,
) -> LayerInterface:
    """``Lhtd[c][Tc]``: the atomic scheduling overlay.

    With ``hide_queues`` the shared-queue primitives disappear from the
    interface — the scheduler abstraction owns them now; upper objects
    interact with threads only through ``yield``/``sleep``/``wakeup``
    (plus the still-exposed spinlocks, which the queuing lock needs).
    """
    underlay = build_thread_underlay(
        sorted(cpus.assignment), locks=locks, capacity=capacity
    )
    hide = ["deQ", "enQ", "q_alloc"] if hide_queues else []
    return sched_interface(
        underlay, cpus, init_current, name=name, atomic=True, hide=hide
    )


def focus_threads(
    interface: LayerInterface,
    focused: Iterable[int],
    thread_rely: Optional[Rely] = None,
) -> LayerInterface:
    """``L[c][Ta]``: restrict guarantees to ``Ta``, extend relies.

    The primitive collection is unchanged (the paper keeps ``L[c].L``);
    only the rely/guarantee pair moves: ``R ∪ R^{Ta}`` and ``G|Ta``.
    """
    focused = set(focused)
    rely = interface.rely
    if thread_rely is not None:
        rely = rely.intersect(thread_rely)
    return interface.with_rely(rely).with_guar(
        interface.guar.restrict(focused)
    )
