"""Per-thread stack composition (paper §5.5).

"On top of the thread-local layer Lhtd[c][t], a function called within a
thread will allocate its stack frame into the thread-private memory
state, and conversely, a thread is never aware of any newer memory
blocks allocated by other threads. ... in the thread composition proof,
we need to account for all such stack frames."

The solution the paper engineered: the extended ``yield``/``sleep``
semantics "also allocates empty memory blocks as 'placeholders' for
other threads' new stack frames during this yield/sleep", and the
algebraic memory model (Fig. 12, :mod:`repro.compiler.memjoin`) then
joins the per-thread memories into the single CPU-local memory.

:func:`check_stack_merge` plays the scenario executably: several threads
run assembly code (each allocating real frames in its private block
memory); at every scheduling point the blocked threads receive
placeholder blocks for the frames the running thread allocates; at every
switch point the join ``m1 ⊛ m2 ⊛ ... ≃ m`` must be defined and satisfy
the Fig. 12 axioms.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..asm.semantics import ASM_MEM, asm_memory
from ..compiler.memjoin import check_join, join, join_all
from ..compiler.memmodel import Memory
from ..core.certificate import Certificate
from ..core.errors import Stuck


class StackMergeTracker:
    """Track per-thread memories through a simulated schedule.

    Threads allocate frames only while running; on every switch, every
    *other* thread's memory is lifted with placeholders for the blocks
    the running thread created (the extended scheduling-primitive
    semantics).  ``merged()`` computes the CPU-local memory and checks
    the join at the same time.
    """

    def __init__(self, thread_ids: Sequence[int]):
        self.memories: Dict[int, Memory] = {tid: Memory() for tid in thread_ids}
        self.running: Optional[int] = None
        self._nb_at_switch: Dict[int, int] = {tid: 0 for tid in thread_ids}

    def switch_to(self, tid: int) -> None:
        """Perform the placeholder bookkeeping of a thread switch."""
        if tid not in self.memories:
            raise Stuck(f"unknown thread {tid}")
        previous = self.running
        self.running = tid
        # The paper's extended yield/sleep: the thread being resumed
        # allocates empty placeholders for every block the others created
        # since it last ran.
        world_nb = max(m.nb() for m in self.memories.values())
        mine = self.memories[tid]
        if world_nb > mine.nb():
            mine.liftnb(world_nb - mine.nb())

    def memory_of(self, tid: int) -> Memory:
        if self.running != tid:
            raise Stuck(
                f"thread {tid} touched memory while {self.running} runs"
            )
        return self.memories[tid]

    def merged(self) -> Memory:
        """The CPU-local memory: the N-way join of the thread memories."""
        return join_all(list(self.memories.values()))


def check_stack_merge(
    thread_programs: Dict[int, Sequence[Tuple[str, Tuple[int, int]]]],
    schedule: Sequence[int],
    judgment: str = "per-thread stacks compose (§5.5)",
) -> Certificate:
    """Simulate frame allocation under a schedule and check every join.

    ``thread_programs[tid]`` is a list of actions executed in schedule
    order when ``tid`` runs: ``("alloc", (lo, hi))``, ``("store",
    (offset, value))`` (into the last own frame), or ``("free", (k,
    0))`` (free the ``k``-th own frame).  ``schedule`` is the switch
    sequence; each entry runs the next action of that thread.
    """
    tracker = StackMergeTracker(sorted(thread_programs))
    cursors = {tid: 0 for tid in thread_programs}
    own_frames: Dict[int, List[int]] = {tid: [] for tid in thread_programs}
    cert = Certificate(
        judgment=judgment,
        rule="StackMerge",
        bounds={"threads": len(thread_programs), "schedule": len(schedule)},
    )
    for step, tid in enumerate(schedule):
        tracker.switch_to(tid)
        actions = thread_programs[tid]
        if cursors[tid] >= len(actions):
            continue
        action, payload = actions[cursors[tid]]
        cursors[tid] += 1
        memory = tracker.memory_of(tid)
        if action == "alloc":
            lo, hi = payload
            own_frames[tid].append(memory.alloc(lo, hi))
        elif action == "store":
            offset, value = payload
            if own_frames[tid]:
                memory.store(own_frames[tid][-1], offset, value)
        elif action == "free":
            index, _ = payload
            if index < len(own_frames[tid]):
                memory.free(own_frames[tid][index])
        else:
            raise Stuck(f"unknown stack action {action!r}")
        # At every switch point the composition must be defined and
        # correct (this is the content of the §5.5 construction).
        try:
            merged = tracker.merged()
            defined = True
        except Stuck as err:
            defined = False
            cert.add(f"join defined after step {step} ({tid}:{action})",
                     False, err.reason)
            continue
        cert.add(f"join defined after step {step} ({tid}:{action})", True)
        # Every thread's own frames are readable in the composite with
        # their own contents (the Ld rule, end to end).
        for owner, frames in own_frames.items():
            mine = tracker.memories[owner]
            for frame in frames:
                block = mine.blocks.get(frame)
                if block is None or block.empty:
                    continue
                for offset, value in block.data.items():
                    if merged.load_opt(frame, offset) != value:
                        cert.add(
                            f"Ld preserved for thread {owner} frame {frame}",
                            False,
                            f"offset {offset}",
                        )
        # nb agreement (the Nb rule, N-way).
        cert.add(
            f"Nb after step {step}",
            merged.nb() == max(m.nb() for m in tracker.memories.values()),
        )
    return cert
