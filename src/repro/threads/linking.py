"""Multithreaded linking (paper Theorem 5.1): ``Lbtd[c] ≤_id Lhtd[c][Tc]``.

"When the whole Tc is focused, all scheduling primitives ... never
switch to unfocused ones.  Thus, its scheduling behaviors are equal to
the ones of Lbtd[c]."  The theorem lets properties proved over the
multithreaded abstraction propagate down to the layer with concrete
scheduling implementations.

The executable check enumerates whole-machine games of the same client
program over both interfaces — the implementation-level ``Lbtd``
(scheduling primitives manipulate real queues; queue events visible) and
the atomic ``Lhtd`` (one event per scheduling primitive) — under all
bounded hardware schedules, and requires the behaviours to agree after
erasing the queue traffic.  Scheduling within a CPU is not a source of
nondeterminism (the software scheduler is deterministic given the log);
only the hardware's choice of CPU branches.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.certificate import Certificate, stamp_provenance
from ..core.errors import OutOfFuel
from ..core.events import DEQ, ENQ, SLEEP, WAKEUP, YIELD
from ..core.interface import LayerInterface
from ..core.log import Log
from ..core.machine import GameResult, run_game
from ..obs import obs_enabled, span
from ..obs.coverage import CoverageBuilder, merge_coverage_maps
from ..obs.forensics import MAX_COUNTEREXAMPLES, build_counterexample
from ..obs.metrics import MetricsWindow, inc
from ..objects.sched import CpuMap, TEXIT, ThreadGameScheduler

SCHED_EVENTS = {YIELD, SLEEP, WAKEUP, TEXIT}


def exiting(player: Callable) -> Callable:
    """Wrap a thread player so it cedes the CPU when its work is done.

    Kernel threads never return; game players do — the wrapper appends a
    ``thread_exit`` so Rsched stays accurate and the remaining threads
    keep running.
    """

    def wrapped(ctx, *args):
        ret = yield from player(ctx, *args)
        yield from ctx.call(TEXIT)
        return ret

    wrapped.__name__ = f"exiting_{getattr(player, '__name__', 'player')}"
    return wrapped


def sched_projection(log: Log) -> Tuple:
    """The scheduling-event skeleton of a log (queue traffic erased)."""
    return tuple(
        (e.tid, e.name, e.args)
        for e in log
        if e.name in SCHED_EVENTS
    )


def canonical_skeleton(log: Log, cpus: CpuMap) -> Tuple:
    """Per-CPU scheduling skeletons (the interleaving quotient).

    Cross-CPU order of scheduling events is interleaving noise: the two
    layers take their scheduling steps at different granularities (one
    atomic event vs. a run of queue operations), so the same behaviour
    appears under differently-ordered hardware schedules.  What is
    semantically binding is (a) the order of events *within* each CPU and
    (b) the sleep/wakeup pairing, which the ``wakeup`` event's woken-
    thread argument records explicitly.  Logs with equal canonical
    skeletons are permutations of each other's commuting events.
    """
    per_cpu: Dict[int, List[Tuple]] = {cpu: [] for cpu in cpus.cpus}
    for event in log:
        if event.name in SCHED_EVENTS:
            per_cpu[cpus.cpu_of(event.tid)].append(
                (event.tid, event.name, event.args)
            )
    return tuple((cpu, tuple(per_cpu[cpu])) for cpu in sorted(per_cpu))


class ThreadChoiceScheduler(ThreadGameScheduler):
    """Exhaustive-enumeration variant of the thread game scheduler.

    Within a CPU the replayed current thread always runs; the hardware's
    choice *among CPUs* follows an explicit script of thread ids.  When
    the script runs out at a round with more than one runnable CPU, the
    scheduler raises :class:`~repro.core.machine.NeedChoice` so the DFS
    below can branch — exactly the mechanism
    :func:`~repro.core.machine.enumerate_game_logs` uses, restricted to
    the software-scheduler-respecting decision points.
    """

    def __init__(self, cpus, init_current, script: Sequence[int] = (),
                 max_choice_depth: int = 10):
        super().__init__(cpus, init_current, ())
        self.script = tuple(script)
        #: After this many branched decisions the scheduler stops
        #: branching and round-robins among the runnable CPUs — the
        #: recorded coverage bound of the enumeration.
        self.max_choice_depth = max_choice_depth

    def pick(self, log: Log, ready: FrozenSet[int]) -> int:
        from ..core.machine import NeedChoice
        from ..objects.sched import NIL_THREAD, idle_next, replay_sched

        states = replay_sched(log, self.cpus, self.init_current)
        runnable: Dict[int, int] = {}
        for cpu, state in states.items():
            if state.current in ready:
                runnable[cpu] = state.current
            elif state.current == NIL_THREAD:
                candidate = idle_next(state)
                if candidate in ready:
                    runnable[cpu] = candidate
        if not runnable:
            return min(ready)
        candidates = frozenset(runnable.values())
        if len(candidates) == 1:
            return next(iter(candidates))
        if self.cursor < len(self.script):
            wanted = self.script[self.cursor]
            self.cursor += 1
            if wanted in candidates:
                return wanted
            return min(candidates)
        if len(self.script) < self.max_choice_depth:
            raise NeedChoice(candidates)
        # Past the branching bound: deterministic fair round-robin.
        ordered = sorted(candidates)
        self.cursor += 1
        return ordered[self.cursor % len(ordered)]

    def fresh(self) -> "ThreadChoiceScheduler":
        return ThreadChoiceScheduler(
            self.cpus, self.init_current, self.script, self.max_choice_depth
        )


def enumerate_thread_games(
    interface: LayerInterface,
    players: Dict[int, Tuple[Callable, Tuple[Any, ...]]],
    cpus: CpuMap,
    init_current: Dict[int, int],
    fuel: int = 20_000,
    max_rounds: int = 200,
    max_runs: int = 50_000,
    max_choice_depth: int = 10,
    coverage: Optional[CoverageBuilder] = None,
) -> List[GameResult]:
    """Enumerate thread games over bounded hardware schedules.

    DFS over the hardware's CPU-choice sequence (software scheduling
    within a CPU is deterministic given the log, so those rounds do not
    branch); the first ``max_choice_depth`` real decision points branch
    exhaustively, after which the hardware round-robins.  On a
    single-CPU machine this is one deterministic run.

    Each returned result carries the CPU-choice script that produced it
    as ``result.choice_script`` (forensics replays from it).
    ``coverage`` (optional) accumulates the explored choice-script
    counts; when omitted and observability is on, a ``"thread_games"``
    axis record is published to the process-wide coverage registry.
    """
    from ..core.machine import NeedChoice

    own_coverage = coverage is None and obs_enabled()
    if own_coverage:
        coverage = CoverageBuilder(
            "thread_games", budget=max_runs, depth_bound=max_choice_depth
        )
    wrapped = {
        tid: (exiting(player), args) for tid, (player, args) in players.items()
    }
    results: List[GameResult] = []
    seen: Set[Tuple] = set()
    stack: List[Tuple[int, ...]] = [()]
    runs = 0
    with span(
        "enumerate_thread_games",
        interface=interface.name,
        threads=len(players),
        cpus=len(cpus.cpus),
    ):
        while stack:
            script = stack.pop()
            runs += 1
            if runs > max_runs:
                if coverage is not None:
                    coverage.exhausted = False
                raise OutOfFuel(
                    f"thread-game enumeration exceeded {max_runs} runs"
                )
            scheduler = ThreadChoiceScheduler(
                cpus, init_current, script, max_choice_depth
            )
            try:
                result = run_game(
                    interface,
                    wrapped,
                    scheduler,
                    fuel=fuel,
                    max_rounds=max_rounds,
                )
            except NeedChoice as need:
                if len(script) >= max_rounds:
                    if coverage is not None:
                        coverage.prune()
                    continue
                for tid in sorted(need.ready, reverse=True):
                    stack.append(script + (tid,))
                continue
            if coverage is not None:
                coverage.visit(depth=len(script))
            key = (result.log, result.finished, result.stuck)
            if key not in seen:
                seen.add(key)
                result.choice_script = script
                results.append(result)
    if coverage is not None:
        coverage.distinct = (coverage.distinct or 0) + len(results)
        if own_coverage:
            coverage.record()
    if obs_enabled():
        inc("threads.games_explored", runs)
        inc("threads.games_distinct", len(results))
    return results


def check_multithreaded_linking(
    lbtd: LayerInterface,
    lhtd: LayerInterface,
    cpus: CpuMap,
    init_current: Dict[int, int],
    client_families: Sequence[Dict[int, Tuple[Callable, Tuple[Any, ...]]]],
    fuel: int = 20_000,
    max_rounds: int = 400,
    max_choice_depth: int = 10,
    require_completeness: bool = False,
) -> Certificate:
    """Thm 5.1: behaviours over ``Lbtd`` equal behaviours over ``Lhtd``.

    For each client (a map thread → player): every completed game over
    the implementation-level interface must have a matching completed
    game over the atomic interface with the identical scheduling-event
    skeleton, and vice versa (behavioural equality, which is stronger
    than the one-directional ``≤_id`` and is what actually holds when the
    whole thread set is focused).
    """
    started = time.perf_counter()
    window = MetricsWindow()
    cert = Certificate(
        judgment=f"{lbtd.name} ≤_id {lhtd.name}[Tc]",
        rule="MultithreadedLinking",
        bounds={
            "clients": len(client_families),
            "max_rounds": max_rounds,
            "max_choice_depth": max_choice_depth,
        },
    )
    games = {"low": 0, "high": 0}
    track_cov = obs_enabled()
    coverage_maps: List[Dict[str, Any]] = []
    captured = 0

    def thread_rerun(iface, players):
        wrapped = {
            tid: (exiting(p), args) for tid, (p, args) in players.items()
        }

        def rerun(script):
            return run_game(
                iface, wrapped,
                ThreadChoiceScheduler(
                    cpus, init_current, script, max_choice_depth
                ),
                fuel=fuel, max_rounds=max_rounds,
            )

        return rerun

    def capture(obligation, status, run, rerun, still_fails):
        nonlocal captured
        if captured >= MAX_COUNTEREXAMPLES:
            return None
        captured += 1

        def artifacts(script):
            replay = rerun(script)
            return {"log": tuple(replay.log), "status": status}

        counterexample = build_counterexample(
            kind="thread-linking",
            judgment=cert.judgment,
            obligation=obligation,
            status=status,
            schedule=getattr(run, "choice_script", run.schedule),
            still_fails=still_fails,
            artifacts=artifacts,
            schedule_kind="sched_decisions",
            log=tuple(run.log),
        )
        return {"counterexample": counterexample}

    for index, players in enumerate(client_families):
        with span("multithreaded_linking.client", client=index):
            cov_low, cov_high = (
                (
                    CoverageBuilder(
                        "thread_games", depth_bound=max_choice_depth
                    ),
                    CoverageBuilder(
                        "thread_games", depth_bound=max_choice_depth
                    ),
                )
                if track_cov else (None, None)
            )
            low = enumerate_thread_games(
                lbtd, players, cpus, init_current, fuel=fuel,
                max_rounds=max_rounds, max_choice_depth=max_choice_depth,
                coverage=cov_low,
            )
            high = enumerate_thread_games(
                lhtd, players, cpus, init_current, fuel=fuel,
                max_rounds=max_rounds, max_choice_depth=max_choice_depth,
                coverage=cov_high,
            )
            if track_cov:
                coverage_maps.append({"thread_games": cov_low.record()})
                coverage_maps.append({"thread_games": cov_high.record()})
        games["low"] += len(low)
        games["high"] += len(high)
        rerun_low = thread_rerun(lbtd, players)
        rerun_high = thread_rerun(lhtd, players)
        # Safety: no run may get *stuck* (divergence — e.g. a sleeping
        # thread that is never woken — is legitimate behaviour and must
        # simply agree across the two layers).
        for name, runs_, rerun in (
            ("implementation", low, rerun_low),
            ("atomic", high, rerun_high),
        ):
            stuck_runs = [r for r in runs_ if r.stuck]
            desc = f"P{index}: no {name} game gets stuck"
            details = "; ".join(r.stuck for r in stuck_runs)[:200]
            evidence = None
            if stuck_runs:
                evidence = capture(
                    desc, stuck_runs[0].stuck, stuck_runs[0], rerun,
                    lambda script, rr=rerun: rr(script).stuck is not None,
                )
            cert.add(desc, not stuck_runs, details, evidence=evidence)
        for completed in (True, False):
            kind = "completed" if completed else "divergent"
            low_skeletons = {
                canonical_skeleton(r.log, cpus)
                for r in low
                if r.stuck is None and r.finished == completed
            }
            high_skeletons = {
                canonical_skeleton(r.log, cpus)
                for r in high
                if r.stuck is None and r.finished == completed
            }
            missing_up = low_skeletons - high_skeletons
            missing_down = high_skeletons - low_skeletons
            # Thm 5.1 proper: Lbtd ≤ Lhtd — every implementation-level
            # behaviour must be witnessed at the atomic level.
            desc = f"P{index}: every {kind} Lbtd behaviour has an Lhtd witness"
            evidence = None
            if missing_up:
                target = sorted(missing_up)[0]
                witness_run = next(
                    (
                        r for r in low
                        if r.stuck is None and r.finished == completed
                        and canonical_skeleton(r.log, cpus) == target
                    ),
                    None,
                )
                if witness_run is not None:
                    def skeleton_unmatched(script, rr=rerun_low,
                                           want_completed=completed,
                                           skeletons=high_skeletons):
                        replay = rr(script)
                        return (
                            replay.stuck is None
                            and replay.finished == want_completed
                            and canonical_skeleton(replay.log, cpus)
                            not in skeletons
                        )

                    evidence = capture(
                        desc,
                        f"no atomic game shares this {kind} skeleton",
                        witness_run, rerun_low, skeleton_unmatched,
                    )
            cert.add(
                desc,
                not missing_up,
                f"unmatched: {sorted(missing_up)[:1]}" if missing_up else "",
                evidence=evidence,
            )
            if require_completeness:
                # The converse (atomic behaviours are implementable) is
                # true but needs deeper low-level coverage: the
                # implementation takes several decision rounds per atomic
                # step, so equal choice depths under-cover it.  Enabled
                # explicitly by tests that size the depths accordingly.
                cert.add(
                    f"P{index}: every {kind} Lhtd behaviour has an Lbtd witness",
                    not missing_down,
                    f"unmatched: {sorted(missing_down)[:1]}" if missing_down else "",
                )
        cert.log_universe = cert.log_universe + tuple(
            r.log for r in low if r.stuck is None
        ) + tuple(r.log for r in high if r.stuck is None)
    extra: Dict[str, Any] = dict(
        clients=len(client_families),
        implementation_games=games["low"],
        atomic_games=games["high"],
    )
    coverage = merge_coverage_maps(coverage_maps)
    if coverage:
        extra["coverage"] = coverage
    stamp_provenance(
        cert, time.perf_counter() - started, window, **extra,
    )
    return cert
