"""Thread-local layer interfaces ``L[c][t]`` (paper §5.3).

"If a multithreaded interface L[c][t] focuses only on a single thread t,
yield and sleep primitives always switch to an unfocused thread and then
repeatedly query E and E^t until yielding back to t. ... We call L[c][t]
a 'thread-local' layer interface because scheduling primitives always
end up switching back to the same thread; they ... effectively act as a
'no-op', except that the shared log gets updated.  Thus, these
scheduling primitives indeed satisfy C calling conventions."

This is the interface the queuing lock (Fig. 11), condition variables
and IPC are verified against: from thread ``t``'s point of view,
``yield()`` and ``sleep(i, lk)`` are ordinary C function calls that
return; the other threads' activity arrives as environment events during
the call.

:func:`yield_back_terminates` is the §5.3 termination check: "we can
prove that this yielding back procedure in our system always terminates"
given a fair software scheduler in which "every running thread gives up
the CPU within a finite number of steps" — executably, the block loop
must re-acquire control within ``fairness_bound`` environment queries
under every generated environment.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.certificate import Certificate
from ..core.environment import ScriptedEnv
from ..core.errors import OutOfFuel
from ..core.events import Event, SLEEP, WAKEUP, YIELD
from ..core.interface import LayerInterface
from ..core.log import Log
from ..core.machine import run_local
from ..core.simulation import prim_player
from ..objects.sched import CpuMap


def yield_back_batches(
    env_threads: Sequence[int],
    me: int,
    rounds: int = 1,
) -> List[Tuple[Event, ...]]:
    """Environment batches in which every other thread runs then yields.

    The shape of a fair software scheduler's behaviour as seen from one
    thread: after my ``yield``, each other thread gets the CPU and
    eventually yields onward; the final yield targets me.
    """
    batch: List[Event] = []
    order = list(env_threads)
    for _ in range(rounds):
        for index, tid in enumerate(order):
            target = order[index + 1] if index + 1 < len(order) else me
            batch.append(Event(tid, YIELD, (target,)))
    return [tuple(batch)]


def yield_back_terminates(
    interface: LayerInterface,
    tid: int,
    env_threads: Sequence[int],
    fairness_bound: int,
    fuel: int = 2_000,
    rounds: Iterable[int] = (1, 2, 3),
) -> Certificate:
    """Check the §5.3 claim: the yield-back loop terminates under
    fairness.

    For each round count, run ``yield`` locally with an environment in
    which the other threads pass control around fairly; the call must
    return within ``fairness_bound`` queries.
    """
    cert = Certificate(
        judgment=f"yield-back terminates for thread {tid}",
        rule="yield-back",
        bounds={"fairness_bound": fairness_bound, "env_threads": list(env_threads)},
    )
    for count in rounds:
        batches = yield_back_batches(env_threads, tid, count)
        run = run_local(
            interface,
            tid,
            prim_player(YIELD),
            (),
            env=ScriptedEnv(batches * (fairness_bound + 1)),
            fuel=fuel,
        )
        cert.add(
            f"yield returns under fair env (rounds={count})",
            run.ok,
            run.stuck or "",
        )
        cert.add(
            f"yield-back within fairness bound (rounds={count})",
            run.queries <= fairness_bound,
            f"{run.queries} queries > {fairness_bound}",
        )
        cert.log_universe = cert.log_universe + (run.log,)
    return cert
