"""Multithreaded and thread-local layer interfaces (paper §5).

Interface builders (:mod:`repro.threads.interface`), thread-local
semantics and the yield-back termination check
(:mod:`repro.threads.thread_local`), and multithreaded linking — Thm 5.1
(:mod:`repro.threads.linking`).  Per-thread stack composition for the
thread-safe compiler lives in :mod:`repro.compiler.memjoin` (§5.5).
"""

from .interface import (
    ATOMIC_HIDE,
    build_lbtd,
    build_lhtd,
    build_thread_underlay,
    focus_threads,
    initial_ready_log,
)
from .thread_local import yield_back_batches, yield_back_terminates
from .stackmerge import StackMergeTracker, check_stack_merge
from .linking import (
    SCHED_EVENTS,
    canonical_skeleton,
    exiting,
    check_multithreaded_linking,
    enumerate_thread_games,
    sched_projection,
)

__all__ = [name for name in dir() if not name.startswith("_")]
