"""x86-style atomic instruction primitives over shared cells.

The bottom of every stack in the paper is a machine interface whose
shared primitives "are provided by L0 and implemented using x86 atomic
instructions" (§2).  We model an *atomic cell* as a named shared integer
whose entire history lives in the log; the provided primitives are the
classic read-modify-write instructions:

* ``fai(cell)`` — fetch-and-increment (``lock xadd``), returns old value
* ``cas(cell, old, new)`` — compare-and-swap (``lock cmpxchg``), returns
  success flag
* ``swap(cell, new)`` — atomic exchange (``xchg``), returns old value
* ``aload(cell)`` / ``astore(cell, value)`` — atomic load/store

Cell values are machine integers wrapping at a configurable width — this
is where the ticket-lock overflow argument (§4.1: "we must also handle
potential integer overflows for t and n") becomes executable: property
tests drive the width down until wraparound actually occurs.

``replay_atomic`` reconstructs a cell's current value from the log; the
recorded ``ret`` of each event is *checked* against the replayed truth,
so a forged history gets stuck rather than silently diverging.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..core.context import ExecutionContext
from ..core.errors import Stuck
from ..core.events import Event
from ..core.interface import Prim, SHARED
from ..core.log import Log
from ..core.machint import UINT32, IntWidth
from ..core.replay import ReplayFn

FAI = "fai"
CAS = "cas"
SWAP = "swap"
ALOAD = "aload"
ASTORE = "astore"

ATOMIC_EVENTS = (FAI, CAS, SWAP, ALOAD, ASTORE)


def _atomic_init(cell, width_bits: int = 32, init: int = 0) -> int:
    return init


def _atomic_step(value: int, event: Event, cell, width_bits: int = 32, init: int = 0) -> int:
    if not event.args or event.args[0] != cell:
        return value
    width = IntWidth(width_bits)
    if event.name == FAI:
        if event.ret is not None and event.ret != value:
            raise Stuck(
                f"forged log: {event} recorded ret {event.ret} but cell "
                f"{cell} holds {value}"
            )
        return width.wrap(value + 1)
    if event.name == CAS:
        _, old, new = event.args
        if value == old:
            return width.wrap(new)
        return value
    if event.name == SWAP:
        return width.wrap(event.args[1])
    if event.name == ASTORE:
        return width.wrap(event.args[1])
    if event.name == ALOAD:
        if event.ret is not None and event.ret != value:
            raise Stuck(
                f"forged log: {event} recorded ret {event.ret} but cell "
                f"{cell} holds {value}"
            )
        return value
    return value


replay_atomic = ReplayFn("Ratomic", _atomic_init, _atomic_step)
"""``replay_atomic(log, cell, width_bits=32, init=0)`` — current value of
an atomic cell, wrapping at the given width."""


def atomic_prims(width: IntWidth = UINT32, cycle_cost: int = 3) -> Tuple[Prim, ...]:
    """The five atomic-instruction primitives at a given integer width.

    Every primitive queries the environment at its query point (these are
    shared operations; other CPUs' events must be able to land before the
    instruction's linearization), then appends its own event and returns
    the value dictated by the replayed cell state.
    """
    bits = width.bits

    def fai_spec(ctx: ExecutionContext, cell):
        yield from ctx.query()
        value = replay_atomic(ctx.log, cell, bits)
        ctx.emit(FAI, cell, ret=value)
        return value

    def cas_spec(ctx: ExecutionContext, cell, old, new):
        yield from ctx.query()
        value = replay_atomic(ctx.log, cell, bits)
        success = value == width.wrap(old)
        ctx.emit(CAS, cell, width.wrap(old), width.wrap(new), ret=success)
        return success

    def swap_spec(ctx: ExecutionContext, cell, new):
        yield from ctx.query()
        value = replay_atomic(ctx.log, cell, bits)
        ctx.emit(SWAP, cell, width.wrap(new), ret=value)
        return value

    def aload_spec(ctx: ExecutionContext, cell):
        yield from ctx.query()
        value = replay_atomic(ctx.log, cell, bits)
        ctx.emit(ALOAD, cell, ret=value)
        return value

    def astore_spec(ctx: ExecutionContext, cell, value):
        yield from ctx.query()
        ctx.emit(ASTORE, cell, width.wrap(value))
        return None

    return (
        Prim(FAI, fai_spec, kind=SHARED, cycle_cost=cycle_cost,
             doc=f"fetch-and-increment, {bits}-bit wraparound"),
        Prim(CAS, cas_spec, kind=SHARED, cycle_cost=cycle_cost,
             doc=f"compare-and-swap, {bits}-bit"),
        Prim(SWAP, swap_spec, kind=SHARED, cycle_cost=cycle_cost,
             doc=f"atomic exchange, {bits}-bit"),
        Prim(ALOAD, aload_spec, kind=SHARED, cycle_cost=1,
             doc=f"atomic load, {bits}-bit"),
        Prim(ASTORE, astore_spec, kind=SHARED, cycle_cost=1,
             doc=f"atomic store, {bits}-bit"),
    )
