"""Multicore linking (paper Theorem 3.1).

``∀P, [[P]]_{Mx86} ⊑_R [[P]]_{Lx86[D]}``

"We can then prove a contextual refinement from Mx86 to Lx86[D] by
picking a suitable hardware scheduler of Lx86[D] for every interleaving
(or log) of Mx86."  Executably: enumerate the fine-grained hardware
behaviours and the query-point layer behaviours for the same client
program, and check that every completed hardware log has an identical
(scheduling-erased) layer log — the witness scheduler is exactly the
layer run that produced it.

This theorem "ensures that all code verification over Lx86[D] can be
propagated down to the x86 multicore hardware Mx86."
"""

from __future__ import annotations

import time
from typing import Any, Dict, Sequence, Tuple

from ..core.certificate import Certificate, stamp_provenance
from ..core.contextual import ClientProgram, check_refinement
from ..core.interface import LayerInterface
from ..core.machine import (
    ScriptScheduler,
    enumerate_game_logs,
    run_game,
    seq_player,
)
from ..core.relation import ID_REL, SimRel
from ..obs import obs_enabled, span
from ..obs.coverage import CoverageBuilder, merge_coverage_maps
from ..obs.metrics import MetricsWindow, inc
from .mx86 import mx86_behaviors


def check_multicore_linking(
    interface: LayerInterface,
    clients: Sequence[ClientProgram],
    relation: SimRel = ID_REL,
    fuel: int = 10_000,
    max_rounds: int = 64,
    max_runs: int = 200_000,
) -> Certificate:
    """Check Thm 3.1 for a family of client programs.

    For each client ``P``: ``[[P]]_{Mx86}`` (fine-grained interleaving)
    must refine ``[[P]]_{Lx86[D]}`` (query-point interleaving) under the
    identity relation — every hardware log is a layer log under some
    scheduler.
    """
    started = time.perf_counter()
    window = MetricsWindow()
    cert = Certificate(
        judgment=f"∀P, [[P]]_Mx86 ⊑_{relation.name} [[P]]_{interface.name}[D]",
        rule="MulticoreLinking",
        bounds={"clients": len(clients), "max_rounds": max_rounds},
    )
    behaviors = {"hw": 0, "layer": 0}
    track_cov = obs_enabled()
    coverage_maps = []
    with span(
        "check_multicore_linking",
        interface=interface.name,
        clients=len(clients),
    ):
        for index, client in enumerate(clients):
            players = {
                tid: (seq_player(list(calls)), ()) for tid, calls in client.items()
            }
            with span("multicore_linking.client", client=index):
                cov_hw, cov_layer = (
                    (
                        CoverageBuilder(
                            "mx86.schedules", budget=max_runs,
                            depth_bound=max_rounds,
                        ),
                        CoverageBuilder(
                            "machine.schedules", budget=max_runs,
                            depth_bound=max_rounds,
                        ),
                    )
                    if track_cov else (None, None)
                )
                hw = mx86_behaviors(
                    interface, players, fuel=fuel, max_rounds=max_rounds,
                    max_runs=max_runs, coverage=cov_hw,
                )
                layer = enumerate_game_logs(
                    interface, players, fuel=fuel, max_rounds=max_rounds,
                    max_runs=max_runs, coverage=cov_layer,
                )
                if track_cov:
                    coverage_maps.append({"mx86.schedules": cov_hw.record()})
                    coverage_maps.append(
                        {"machine.schedules": cov_layer.record()}
                    )

                def rerun_hw(schedule, _players=players):
                    # The failing side of Thm 3.1 is the fine-grained
                    # hardware machine: replay it under one decision
                    # script so forensics can shrink the interleaving.
                    return run_game(
                        interface, _players, ScriptScheduler(schedule),
                        fuel=fuel, max_rounds=max_rounds, fine_grained=True,
                    )

                check_refinement(
                    hw, layer, relation, cert, label=f"P{index}",
                    rerun_low=rerun_hw,
                )
            behaviors["hw"] += len(hw)
            behaviors["layer"] += len(layer)
            inc("linking.hw_behaviors", len(hw))
            inc("linking.layer_behaviors", len(layer))
            cert.log_universe = cert.log_universe + tuple(
                r.log for r in hw if r.ok
            )
    extra = dict(
        clients=len(clients),
        hw_behaviors=behaviors["hw"],
        layer_behaviors=behaviors["layer"],
    )
    coverage = merge_coverage_maps(coverage_maps)
    if coverage:
        extra["coverage"] = coverage
    stamp_provenance(cert, time.perf_counter() - started, window, **extra)
    return cert
