"""The push/pull shared-memory model (paper §3.1, Fig. 6, Fig. 8).

Shared memory is never accessed directly: each location ``b`` carries an
ownership status, and two shared primitives move data between the shared
world and a participant's private copy:

* ``pull(b)`` — acquire ownership of ``b`` and load its replayed value
  into the local copy (``m.b`` in Fig. 8).  Queries the environment
  first.  Pulling a non-free location is a data race: the machine gets
  stuck.
* ``push(b)`` — publish the local copy's value as a ``push(b, v)`` event
  and free the ownership.  Does not query (the pusher is in critical
  state).  Pushing a location one does not own gets stuck.

The ownership fold is :func:`repro.core.replay.replay_shared`; values
flowing through ``push`` events are deep-frozen
(:func:`repro.core.events.freeze`) so logs stay immutable, and thawed on
``pull``.

Private copies live in ``ctx.priv["shared"]`` — a dict from location to
the thawed value.  Interpreted C code reads and writes the copy through
ordinary private operations; only pull/push touch the log.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..core.context import ExecutionContext
from ..core.errors import Stuck
from ..core.events import PULL, PUSH, freeze, thaw
from ..core.interface import Prim, SHARED, shared_prim
from ..core.replay import VUNDEF, replay_shared

SHARED_COPY = "shared"


def local_copy(ctx: ExecutionContext) -> Dict[Any, Any]:
    """The participant's private copies of pulled shared locations."""
    return ctx.priv.setdefault(SHARED_COPY, {})


def pull_spec(ctx: ExecutionContext, loc):
    """``σpull`` (Fig. 8): query E, take ownership, load the local copy."""
    yield from ctx.query()
    cell = replay_shared(ctx.log, loc)  # raises Stuck on a racy prefix
    if not cell.status.is_free:
        raise Stuck(
            f"data race: {ctx.tid}.pull({loc}) while {cell.status}"
        )
    ctx.emit(PULL, loc)
    value = None if cell.value == VUNDEF else thaw(cell.value)
    local_copy(ctx)[loc] = value
    return value


def push_spec(ctx: ExecutionContext, loc):
    """``σpush`` (Fig. 8): publish the local copy, free ownership.

    No query — push happens in critical state.
    """
    copies = local_copy(ctx)
    if loc not in copies:
        raise Stuck(f"{ctx.tid}.push({loc}) without a pulled local copy")
    cell = replay_shared(ctx.log, loc)
    if cell.status.owner != ctx.tid:
        raise Stuck(
            f"data race: {ctx.tid}.push({loc}) while {cell.status}"
        )
    value = freeze(copies.pop(loc))
    ctx.emit(PUSH, loc, value)
    return None
    yield  # pragma: no cover - marks push_spec as a (non-querying) player


def pull_prim(cycle_cost: int = 2) -> Prim:
    return Prim(
        PULL,
        pull_spec,
        kind=SHARED,
        enters_critical=True,
        cycle_cost=cycle_cost,
        doc="acquire ownership of a shared location and load its value",
    )


def push_prim(cycle_cost: int = 2) -> Prim:
    return Prim(
        PUSH,
        push_spec,
        kind=SHARED,
        exits_critical=True,
        cycle_cost=cycle_cost,
        doc="publish the local copy of a shared location and free it",
    )


def read_copy(ctx: ExecutionContext, loc) -> Any:
    """Read the pulled local copy (private operation; no events)."""
    copies = local_copy(ctx)
    if loc not in copies:
        raise Stuck(f"{ctx.tid} reads {loc} without ownership")
    return copies[loc]


def write_copy(ctx: ExecutionContext, loc, value) -> None:
    """Write the pulled local copy (private operation; no events)."""
    copies = local_copy(ctx)
    if loc not in copies:
        raise Stuck(f"{ctx.tid} writes {loc} without ownership")
    copies[loc] = value
