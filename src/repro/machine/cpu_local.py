"""The CPU-local layer interface ``Lx86[c]`` (paper §3.2).

"When focusing on a single CPU c, L[c] is called a CPU-local layer
interface.  Its machine state is (ρ, m, a, l), where ρ is the private
state of the CPU c and m is just a local copy of the shared memory."

:func:`lx86_interface` builds the bottom interface of every stack in this
reproduction: the x86 atomic-instruction primitives
(:mod:`repro.machine.atomics`), the push/pull shared-memory primitives
(:mod:`repro.machine.sharedmem`), and any extra example primitives the
caller supplies (the ``f``/``g`` of Fig. 3).  All higher layers — ticket
and MCS locks, shared queues, the scheduler — are built above this
interface exactly as in §4: "All layers are built upon the CPU-local
layer interface Lx86[c]."
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.interface import LayerInterface, Prim
from ..core.machint import UINT32, IntWidth
from ..core.rely_guarantee import Guarantee, Rely
from .atomics import atomic_prims
from .sharedmem import pull_prim, push_prim


def lx86_interface(
    domain: Iterable[int],
    width: IntWidth = UINT32,
    extra_prims: Iterable[Prim] = (),
    rely: Optional[Rely] = None,
    guar: Optional[Guarantee] = None,
    name: str = "Lx86",
) -> LayerInterface:
    """Build ``Lx86`` over a CPU domain.

    ``width`` is the machine-integer width of the atomic cells (lower it
    to exercise the overflow argument).  ``extra_prims`` extends the
    interface with application primitives.
    """
    prims = {}
    for prim in atomic_prims(width):
        prims[prim.name] = prim
    pull = pull_prim()
    push = push_prim()
    prims[pull.name] = pull
    prims[push.name] = push
    for prim in extra_prims:
        prims[prim.name] = prim
    return LayerInterface(
        name,
        domain,
        prims,
        rely=rely,
        guar=guar,
    )
