"""Hardware scheduler strategies beyond the core round-robin/script ones.

The paper's rely conditions impose *fairness* on the hardware scheduler
("any CPU can be scheduled within m steps", §4.1); the progress checker
in :mod:`repro.verify.progress` quantifies over the fair schedulers
produced here.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence

from ..core.log import Log
from ..core.machine import GameScheduler
from ..obs.metrics import inc


class SeededScheduler(GameScheduler):
    """A deterministic pseudo-random scheduler (linear congruential).

    Deterministic given the seed, so runs are reproducible; *not*
    guaranteed fair — used for randomized exploration, not for progress
    proofs.
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._state = seed & 0x7FFFFFFF

    def pick(self, log: Log, ready: FrozenSet[int]) -> int:
        self._state = (self._state * 1103515245 + 12345) & 0x7FFFFFFF
        ordered = sorted(ready)
        inc("sched.seeded_picks")
        return ordered[self._state % len(ordered)]

    def fresh(self) -> "SeededScheduler":
        return SeededScheduler(self.seed)


class FairScheduler(GameScheduler):
    """A scheduler that guarantees every ready participant runs within
    ``bound`` rounds.

    Follows an arbitrary preference list but tracks starvation: any
    participant not scheduled for ``bound`` rounds preempts the
    preference.  This is the executable form of the fairness rely
    condition; the ticket-lock liveness bound ``n × m × #CPU`` is checked
    against schedulers of this class with ``m = bound``.
    """

    def __init__(self, preference: Sequence[int], bound: int):
        self.preference = list(preference)
        self.bound = bound
        self._starving = {tid: 0 for tid in preference}
        self._cursor = 0

    def pick(self, log: Log, ready: FrozenSet[int]) -> int:
        inc("sched.fair_picks")
        overdue = [
            tid
            for tid in sorted(ready)
            if self._starving.get(tid, 0) >= self.bound - 1
        ]
        if overdue:
            choice = overdue[0]
            inc("sched.fairness_preemptions")
        else:
            choice = None
            for _ in range(len(self.preference)):
                candidate = self.preference[self._cursor % len(self.preference)]
                self._cursor += 1
                if candidate in ready:
                    choice = candidate
                    break
            if choice is None:
                choice = min(ready)
        for tid in ready:
            if tid == choice:
                self._starving[tid] = 0
            else:
                self._starving[tid] = self._starving.get(tid, 0) + 1
        return choice

    def fresh(self) -> "FairScheduler":
        return FairScheduler(self.preference, self.bound)


def fair_scheduler_family(domain: Sequence[int], bound: int) -> List[FairScheduler]:
    """A family of fair schedulers with different preference rotations."""
    domain = list(domain)
    family = []
    for shift in range(len(domain)):
        rotated = domain[shift:] + domain[:shift]
        family.append(FairScheduler(rotated, bound))
        family.append(FairScheduler(list(reversed(rotated)), bound))
    return family
