"""Machine models: ``Mx86``, push/pull memory, CPU-local interfaces.

The multicore substrate of the paper's §3: the hardware machine model
(:mod:`repro.machine.mx86`), the push/pull shared-memory model
(:mod:`repro.machine.sharedmem`), x86-style atomic cells
(:mod:`repro.machine.atomics`), the CPU-local bottom interface
``Lx86[c]`` (:mod:`repro.machine.cpu_local`), hardware schedulers
(:mod:`repro.machine.hw_sched`), and multicore linking — Thm 3.1
(:mod:`repro.machine.linking`).
"""

from .atomics import (
    ALOAD,
    ASTORE,
    ATOMIC_EVENTS,
    CAS,
    FAI,
    SWAP,
    atomic_prims,
    replay_atomic,
)
from .sharedmem import (
    SHARED_COPY,
    local_copy,
    pull_prim,
    pull_spec,
    push_prim,
    push_spec,
    read_copy,
    write_copy,
)
from .cpu_local import lx86_interface
from .mx86 import Mx86State, mx86_behaviors, reconstruct_state
from .hw_sched import FairScheduler, SeededScheduler, fair_scheduler_family
from .linking import check_multicore_linking

__all__ = [name for name in dir() if not name.startswith("_")]
