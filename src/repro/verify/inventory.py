"""Code and proof-effort inventory (the substrate of Tables 1 and 2).

The paper's evaluation quantifies effort in lines of Coq per component
(Table 1: the toolkit; Table 2: the certified objects).  The analog here
measures the corresponding artifacts of this reproduction: source lines
per module, mini-C source sizes, and the number of checked obligations
per certificate.  The benchmark harnesses
(``benchmarks/bench_table1_toolkit.py`` and ``bench_table2_objects.py``)
print these next to the paper's numbers.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

import repro


def _package_root() -> str:
    return os.path.dirname(os.path.abspath(repro.__file__))


def count_lines(path: str) -> int:
    """Non-blank, non-comment-only source lines of one file."""
    total = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                total += 1
    return total


def module_loc(relative: str) -> int:
    """LOC of one module path relative to the ``repro`` package root.

    ``relative`` like ``"core/simulation.py"`` or a directory like
    ``"core"`` (summed recursively).
    """
    path = os.path.join(_package_root(), relative)
    if os.path.isfile(path):
        return count_lines(path)
    total = 0
    for dirpath, _dirnames, filenames in os.walk(path):
        for filename in filenames:
            if filename.endswith(".py"):
                total += count_lines(os.path.join(dirpath, filename))
    return total


#: The paper's Table 1 components mapped to this reproduction's modules.
TABLE1_COMPONENTS: Dict[str, Tuple[List[str], int]] = {
    "Auxiliary library": (
        ["core/errors.py", "core/machint.py", "core/events.py",
         "core/log.py", "core/replay.py"],
        6200,
    ),
    "C verifier": (
        ["clight", "verify/verifiers.py"],
        2200,
    ),
    "Asm verifier": (
        ["asm"],
        800,
    ),
    "Simulation library": (
        ["core/relation.py", "core/simulation.py", "core/certificate.py"],
        1800,
    ),
    "Multilayer linking": (
        ["core/calculus.py", "core/interface.py", "core/module.py",
         "core/contextual.py"],
        17000,
    ),
    "Multithread linking": (
        ["threads", "objects/sched.py"],
        10000,
    ),
    "Multicore linking": (
        ["machine", "core/machine.py", "core/environment.py",
         "core/rely_guarantee.py", "core/context.py"],
        7000,
    ),
    "Thread-safe CompCertX": (
        ["compiler"],
        7500,
    ),
}


def table1_inventory() -> List[Dict[str, object]]:
    """Per Table 1 component: our LOC next to the paper's Coq LOC."""
    rows = []
    for component, (paths, paper_loc) in TABLE1_COMPONENTS.items():
        ours = sum(module_loc(path) for path in paths)
        rows.append(
            {
                "component": component,
                "paper_coq_loc": paper_loc,
                "repro_py_loc": ours,
                "modules": list(paths),
            }
        )
    return rows


#: The paper's Table 2 objects: (module paths, paper row).
#: Paper columns: C&Asm source, spec, invariant proof, C&Asm proof,
#: simulation proof.
TABLE2_OBJECTS: Dict[str, Tuple[List[str], Dict[str, int]]] = {
    "Ticket lock": (
        ["objects/ticket_lock.py"],
        {"source": 74, "spec": 615, "invariant": 1080, "code_proof": 1173,
         "sim_proof": 2296},
    ),
    "MCS lock": (
        ["objects/mcs_lock.py"],
        {"source": 287, "spec": 1569, "invariant": 2299, "code_proof": 1899,
         "sim_proof": 3049},
    ),
    "Local queue": (
        ["objects/local_queue.py"],
        {"source": 377, "spec": 554, "invariant": 748, "code_proof": 2821,
         "sim_proof": 3647},
    ),
    "Shared queue": (
        ["objects/shared_queue.py"],
        {"source": 20, "spec": 107, "invariant": 190, "code_proof": 171,
         "sim_proof": 419},
    ),
    "Scheduler": (
        ["objects/sched.py"],
        {"source": 62, "spec": 153, "invariant": 166, "code_proof": 1724,
         "sim_proof": 2042},
    ),
    "Queuing lock": (
        ["objects/qlock.py"],
        {"source": 112, "spec": 255, "invariant": 992, "code_proof": 328,
         "sim_proof": 464},
    ),
}


def table2_paper_rows() -> Dict[str, Dict[str, int]]:
    return {name: dict(row) for name, (_paths, row) in TABLE2_OBJECTS.items()}


def c_source_lines(unit) -> int:
    """Statement-level size of a mini-C translation unit (Table 2's
    'C&Asm source' analog)."""
    return unit.source_lines()


def lint_rule_catalog() -> List[Dict[str, str]]:
    """The static-analysis rule catalog as inventory rows.

    One row per ``repro.analysis`` rule — the checking surface that runs
    *before* the bounded verifier (DESIGN.md §5), reported alongside the
    proof-effort tables so the full obligation surface is in one place.
    """
    from ..analysis.rules import RULESET_VERSION, rule_table

    return [
        {
            "rule": rule_id,
            "severity": severity,
            "title": title,
            "ruleset": RULESET_VERSION,
        }
        for rule_id, severity, title in rule_table()
    ]
