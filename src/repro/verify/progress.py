"""Progress properties: starvation freedom and termination bounds.

"Certified concurrent layers enforce termination-sensitive contextual
correctness ... every certified concurrent object satisfies not only a
safety property (e.g., linearizability) but also a progress property
(e.g., starvation-freedom)" (§1).

Two executable forms:

* :func:`check_starvation_freedom` — under every scheduler of a *fair*
  family, every participant's whole program completes within a bound.
* :func:`check_ticket_liveness_bound` — the paper's quantitative §4.1
  claim: "the while-loop in acq terminates in ``n × m × #CPU`` steps",
  where ``n`` is the rely's critical-section (release) bound and ``m``
  the scheduler fairness bound.  We measure the actual number of spin
  iterations (``aload`` events between a thread's ``fai`` and ``pull``)
  across all fair schedules and compare against the formula.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.certificate import Certificate, stamp_provenance
from ..core.interface import LayerInterface
from ..core.log import Log
from ..core.machine import GameScheduler, run_game, sample_game_logs
from ..machine.hw_sched import fair_scheduler_family
from ..obs import obs_enabled, span
from ..obs.coverage import SAMPLED, CoverageBuilder
from ..obs.forensics import MAX_COUNTEREXAMPLES, build_counterexample
from ..obs.metrics import MetricsWindow


def _progress_evidence(cert, obligation, details, result, captured):
    """Unshrunk counterexample for one failing sampled schedule.

    Sampled fair schedulers do not enumerate a script space the shrinker
    could probe meaningfully (fairness is a property of the whole
    schedule, not a prefix), so the evidence records the full failing
    schedule and log without delta-debugging.
    """
    if captured[0] >= MAX_COUNTEREXAMPLES:
        return None
    captured[0] += 1
    counterexample = build_counterexample(
        kind="progress",
        judgment=cert.judgment,
        obligation=obligation,
        status=details,
        schedule=result.schedule,
        schedule_kind="sched_decisions",
        log=tuple(result.log),
    )
    return {"counterexample": counterexample}


def check_starvation_freedom(
    interface: LayerInterface,
    players: Dict[int, Tuple[Callable, Tuple[Any, ...]]],
    fairness_bound: int,
    round_bound: int,
    fuel: int = 50_000,
    schedulers: Optional[Sequence[GameScheduler]] = None,
    judgment: str = "starvation freedom",
) -> Certificate:
    """Every fair schedule completes every participant within the bound."""
    started = time.perf_counter()
    window = MetricsWindow()
    if schedulers is None:
        schedulers = fair_scheduler_family(sorted(players), fairness_bound)
    coverage = (
        CoverageBuilder(
            "progress.fair_schedules", depth_bound=round_bound, mode=SAMPLED
        )
        if obs_enabled() else None
    )
    captured = [0]
    with span(
        "progress.starvation_freedom",
        interface=interface.name,
        participants=len(players),
    ):
        results = sample_game_logs(
            interface, players, schedulers, fuel=fuel, max_rounds=round_bound,
            coverage=coverage,
        )
        cert = Certificate(
            judgment=judgment,
            rule="Progress",
            bounds={
                "fairness_bound": fairness_bound,
                "round_bound": round_bound,
                "schedulers": len(list(schedulers)),
            },
        )
        for index, result in enumerate(results):
            desc = f"fair schedule {index} completes within {round_bound} rounds"
            details = result.stuck or f"unfinished after {result.rounds} rounds"
            cert.add(
                desc,
                result.ok,
                details,
                evidence=None if result.ok else _progress_evidence(
                    cert, desc, details, result, captured
                ),
            )
        cert.log_universe = tuple(r.log for r in results)
    extra: Dict[str, Any] = {"schedulers": len(list(schedulers))}
    if coverage is not None:
        extra["coverage"] = {
            "progress.fair_schedules": coverage.record()
        }
    stamp_provenance(cert, time.perf_counter() - started, window, **extra)
    return cert


def spin_iterations(log: Log, tid: int, lock: Any) -> List[int]:
    """Spin counts of each of ``tid``'s ticket-lock acquisitions.

    Counts the ``aload`` events between each of the thread's ``fai`` (on
    the lock's t-cell) and the following ``pull``.
    """
    from ..machine.atomics import ALOAD, FAI
    from ..objects.ticket_lock import t_cell

    counts: List[int] = []
    current: Optional[int] = None
    for event in log:
        if event.tid != tid:
            continue
        if event.name == FAI and event.args and event.args[0] == t_cell(lock):
            current = 0
        elif event.name == ALOAD and current is not None:
            current += 1
        elif event.name == "pull" and current is not None:
            counts.append(current)
            current = None
    return counts


def check_ticket_liveness_bound(
    interface: LayerInterface,
    players: Dict[int, Tuple[Callable, Tuple[Any, ...]]],
    lock: Any,
    release_bound: int,
    fairness_bound: int,
    fuel: int = 50_000,
    round_bound: int = 2_000,
) -> Certificate:
    """§4.1: acq's spin loop terminates within ``n × m × #CPU`` steps.

    Runs the system under the fair scheduler family and checks the
    measured spin counts against the formula's step budget.
    """
    started = time.perf_counter()
    window = MetricsWindow()
    ncpu = len(players)
    budget = release_bound * fairness_bound * ncpu
    schedulers = fair_scheduler_family(sorted(players), fairness_bound)
    coverage = (
        CoverageBuilder(
            "progress.fair_schedules", depth_bound=round_bound, mode=SAMPLED
        )
        if obs_enabled() else None
    )
    captured = [0]
    with span(
        "progress.ticket_liveness_bound",
        interface=interface.name,
        budget=budget,
    ):
        results = sample_game_logs(
            interface, players, schedulers, fuel=fuel, max_rounds=round_bound,
            coverage=coverage,
        )
        cert = Certificate(
            judgment=f"ticket acq terminates within n×m×#CPU = "
            f"{release_bound}×{fairness_bound}×{ncpu} = {budget} steps",
            rule="Progress",
            bounds={"budget": budget, "schedulers": len(schedulers)},
        )
        worst = 0
        for index, result in enumerate(results):
            desc = f"fair schedule {index} completes"
            details = result.stuck or f"unfinished after {result.rounds} rounds"
            cert.add(
                desc, result.ok, details,
                evidence=None if result.ok else _progress_evidence(
                    cert, desc, details, result, captured
                ),
            )
            for tid in players:
                for count in spin_iterations(result.log, tid, lock):
                    worst = max(worst, count)
                    desc = f"schedule {index}, thread {tid}: spin {count} ≤ {budget}"
                    spin_ok = count <= budget
                    cert.add(
                        desc,
                        spin_ok,
                        evidence=None if spin_ok else _progress_evidence(
                            cert, desc,
                            f"spin count {count} exceeds budget {budget}",
                            result, captured,
                        ),
                    )
        cert.bounds["worst_observed_spin"] = worst
        cert.log_universe = tuple(r.log for r in results)
    extra: Dict[str, Any] = dict(
        schedulers=len(schedulers),
        worst_observed_spin=worst,
        step_budget=budget,
    )
    if coverage is not None:
        extra["coverage"] = {
            "progress.fair_schedules": coverage.record()
        }
    stamp_provenance(cert, time.perf_counter() - started, window, **extra)
    return cert
