"""The C and assembly program verifiers (Fig. 2's verifier boxes).

Thin, stable fronts over the simulation machinery: given a translation
unit (C or asm), a layer interface, and the specification primitive in an
overlay, discharge the ``Fun`` obligation ``LκM_{L[c]} ≤_R σ`` and return
a certified layer.  These are the entry points a user reaches for when
certifying their own objects; the lock/queue modules use the same
machinery through their ``certify_*`` drivers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Tuple

from ..asm.ast import AsmUnit
from ..asm.semantics import asm_func_impl
from ..clight.ast import TranslationUnit
from ..clight.semantics import c_func_impl
from ..core.calculus import fun_rule, module_rule
from ..core.certificate import Certificate, CertifiedLayer
from ..core.interface import LayerInterface
from ..core.module import Module
from ..core.relation import ID_REL, SimRel
from ..core.simulation import Scenario, SimConfig
from ..obs import span
from ..obs.metrics import inc


def verify_c_function(
    underlay: LayerInterface,
    unit: TranslationUnit,
    name: str,
    overlay: LayerInterface,
    tid: int,
    config: SimConfig,
    relation: SimRel = ID_REL,
) -> CertifiedLayer:
    """The C verifier: one function against its overlay specification."""
    with span("verify.c_function", function=name, unit=unit.name):
        inc("verify.c_functions")
        return fun_rule(
            underlay, c_func_impl(unit, name), overlay, relation, tid, config
        )


def verify_asm_function(
    underlay: LayerInterface,
    unit: AsmUnit,
    name: str,
    overlay: LayerInterface,
    tid: int,
    config: SimConfig,
    relation: SimRel = ID_REL,
    width_bits: int = 32,
) -> CertifiedLayer:
    """The Asm verifier: one assembly function against its specification."""
    with span("verify.asm_function", function=name, unit=unit.name):
        inc("verify.asm_functions")
        return fun_rule(
            underlay,
            asm_func_impl(unit, name, width_bits),
            overlay,
            relation,
            tid,
            config,
        )


def verify_c_module(
    underlay: LayerInterface,
    unit: TranslationUnit,
    names: Sequence[str],
    overlay: LayerInterface,
    tid: int,
    scenarios: Sequence[Scenario],
    relation: SimRel = ID_REL,
) -> CertifiedLayer:
    """The C verifier, module-at-a-time with protocol scenarios."""
    with span(
        "verify.c_module", unit=unit.name, functions=list(names)
    ):
        inc("verify.c_modules")
        module = Module(
            {name: c_func_impl(unit, name) for name in names},
            name=unit.name,
        )
        return module_rule(underlay, module, overlay, relation, tid, scenarios)
