"""Verifiers and property checkers.

The C/asm verifiers (:mod:`repro.verify.verifiers`), the Herlihy–Wing
linearizability checker (:mod:`repro.verify.linearizability`), progress
checking (:mod:`repro.verify.progress`), and the code/effort inventory
behind the Table 1 & 2 reproductions (:mod:`repro.verify.inventory`).
"""

from .linearizability import (
    INV,
    Operation,
    RES,
    check_linearizable,
    fifo_queue_model,
    history_of,
    instrument,
    lock_model,
    register_model,
)
from .progress import (
    check_starvation_freedom,
    check_ticket_liveness_bound,
    spin_iterations,
)
from .verifiers import verify_asm_function, verify_c_function, verify_c_module
from .inventory import (
    TABLE1_COMPONENTS,
    TABLE2_OBJECTS,
    c_source_lines,
    lint_rule_catalog,
    module_loc,
    table1_inventory,
    table2_paper_rows,
)

__all__ = [name for name in dir() if not name.startswith("_")]
