"""A Herlihy–Wing linearizability checker.

The paper grounds its atomic interfaces in linearizability: "Herlihy and
Wing introduced linearizability as a key technique for building
abstraction over concurrent objects ... linearizability is actually
equivalent to a termination-insensitive version of the contextual
refinement property" (§7).  The log-lift simulations establish contextual
refinement directly; this module provides the classical check as an
independent cross-validation: concurrent histories harvested from
whole-machine games must be linearizable against the object's sequential
model.

Histories are sequences of invocation/response marker events that test
players emit around each operation (:func:`instrument`); the checker
(:func:`check_linearizable`) does the standard search for a legal
sequential witness respecting real-time order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.context import ExecutionContext
from ..core.log import Log

INV = "op_inv"
RES = "op_res"


@dataclass(frozen=True)
class Operation:
    """One completed operation in a history."""

    tid: int
    name: str
    args: Tuple[Any, ...]
    ret: Any
    inv_index: int
    res_index: int

    def __repr__(self):
        return (
            f"{self.tid}.{self.name}{self.args}→{self.ret} "
            f"[{self.inv_index},{self.res_index}]"
        )


def instrument(op_name: str, player_body: Callable) -> Callable:
    """Wrap an operation player with invocation/response markers.

    ``player_body(ctx, *args) -> ret`` is any player; the wrapper emits
    ``op_inv`` before and ``op_res`` (carrying the result) after, so
    game logs double as linearizability histories.
    """

    def player(ctx: ExecutionContext, *args):
        ctx.emit(INV, op_name, *args)
        ret = yield from player_body(ctx, *args)
        ctx.emit(RES, op_name, ret=ret)
        return ret

    player.__name__ = f"linz_{op_name}"
    return player


def history_of(log: Log) -> List[Operation]:
    """Extract the completed operations of a log (pending ops dropped)."""
    pending: Dict[int, Tuple[str, Tuple[Any, ...], int]] = {}
    operations: List[Operation] = []
    for index, event in enumerate(log):
        if event.name == INV:
            pending[event.tid] = (event.args[0], tuple(event.args[1:]), index)
        elif event.name == RES and event.tid in pending:
            name, args, inv_index = pending.pop(event.tid)
            operations.append(
                Operation(event.tid, name, args, event.ret, inv_index, index)
            )
    return operations


def check_linearizable(
    operations: Sequence[Operation],
    model_init: Callable[[], Any],
    model_apply: Callable[[Any, Operation], Tuple[bool, Any]],
) -> Optional[List[Operation]]:
    """Search for a legal sequential witness (Herlihy–Wing).

    ``model_apply(state, op) -> (legal, new_state)`` is the sequential
    specification: whether ``op`` (with its recorded return value) is
    legal in ``state``.  Returns a witness order, or ``None`` when the
    history is not linearizable.

    Real-time order: op A precedes op B iff A's response is before B's
    invocation; the witness must respect it.  Complexity is exponential
    in the number of overlapping operations — fine for the bounded
    histories games produce.
    """
    operations = list(operations)

    def precedes(a: Operation, b: Operation) -> bool:
        return a.res_index < b.inv_index

    def search(remaining: List[Operation], state: Any, acc: List[Operation]):
        if not remaining:
            return list(acc)
        # Minimal ops: no other remaining op strictly precedes them.
        for index, op in enumerate(remaining):
            if any(precedes(other, op) for other in remaining if other is not op):
                continue
            legal, new_state = model_apply(state, op)
            if not legal:
                continue
            acc.append(op)
            rest = remaining[:index] + remaining[index + 1:]
            witness = search(rest, new_state, acc)
            if witness is not None:
                return witness
            acc.pop()
        return None

    return search(operations, model_init(), [])


# --- standard sequential models -------------------------------------------------


def fifo_queue_model():
    """Sequential FIFO queue: ops ``enq(x)`` and ``deq() → x | NIL``."""

    def init():
        return ()

    def apply(state: Tuple, op: Operation):
        if op.name == "enq":
            return True, state + (op.args[-1],)
        if op.name == "deq":
            if not state:
                return op.ret in (0, None), state
            return op.ret == state[0], state[1:]
        return False, state

    return init, apply


def lock_model():
    """Sequential mutual-exclusion lock: ``acq``/``rel`` strictly alternate
    per holder."""

    def init():
        return None  # current holder

    def apply(state, op: Operation):
        if op.name == "acq":
            return state is None, op.tid
        if op.name == "rel":
            return state == op.tid, None
        return False, state

    return init, apply


def register_model(initial: Any = 0):
    """Sequential read/write register."""

    def init():
        return initial

    def apply(state, op: Operation):
        if op.name == "write":
            return True, op.args[-1]
        if op.name == "read":
            return op.ret == state, state
        return False, state

    return init, apply
