"""State-space reduction for the bounded-exhaustive checkers.

The enumeration core explores every scheduling of a bounded game and
every environment context of a bounded simulation.  Most of that work is
redundant: the PR 5 profiler measured 84.3% replay-equivalent machine
runs on the Thm 2.2 soundness game.  This package removes the
redundancy without changing any verdict, through three independently
gated techniques:

``dpor``
    Dynamic partial-order reduction with sleep sets
    (:mod:`repro.reduce.dpor`).  The independence relation is the one
    already implicit in the push/pull log discipline: a scheduling step
    that appends no shared event (a *silent* step) reads and writes no
    shared state — by the lint rules I201/I202 every shared observation
    emits an event and private primitives touch only ``ctx.priv`` — so
    it commutes with every other step modulo hardware-scheduling events.
    Two pruning rules exploit it: *first-branch dominance* (a silent
    chosen step makes every sibling schedule equivalent to one in the
    chosen subtree, so the siblings are pruned) and *sleep sets*
    (participants explored earlier at a decision stay asleep in a later
    sibling's subtree for as long as the executed steps are silent, so
    the transposed duplicates are never scheduled at all).  The same
    axis replaces prefix *replays* (re-running a whole game to reach
    one new decision point) with path extension: the run keeps going
    past the end of its decision script and records the sibling
    branches it passes.

``transpo``
    A hash-consed transposition table (:mod:`repro.reduce.dpor`) keyed
    by the profiler's state fingerprints
    (:func:`repro.reduce.fingerprint.state_fingerprint`): the non-sched
    event log, the per-participant step counts and the ready set.
    Deterministic, lint-clean players are a function of exactly that
    state, so a revisited key means the whole subtree was already
    explored (mod hardware-scheduling events) and the run is cut.  The
    table is scoped per explored subtree — the same scope in serial and
    parallel runs — so reduced enumeration commutes with ``REPRO_JOBS``
    (the PR 3 determinism contract).

``rg-simplify``
    An algebraic rely-guarantee pre-simplifier (:mod:`repro.reduce.laws`)
    applying a small law catalog before/around machine runs:
    *strengthen-guarantee* (a prefix-closed guarantee checked once on
    the final snapshot instead of at every query point),
    *weaken-rely* (unconstrained or prefix-closed rely conditions
    validated on the longest prefix only), *frame* (invariants with a
    declared event-name footprint are only re-checked when the log
    delta touches it) and *merge-compatible-obligations* (``Compat``
    implications discharged structurally and refinement witness
    searches shared between identical low logs).

``static-indep``
    Static independence seeds for the DPOR scheduler
    (:mod:`repro.analysis.independence`).  The interprocedural
    dependency analysis classifies whole players as *invisible* — every
    primitive in their transitive slice provably appends no event,
    queries nothing, reads neither log nor buffer, and touches only
    thread-private state — so their single scheduling step commutes
    with every other step, including steps that finish a player (which
    the dynamic silent-step heuristic must keep).  The scheduler defers
    invisible players instead of branching on them and keeps them
    asleep across non-silent steps.  Works with or without ``dpor``.

Gating: the ``REPRO_REDUCE`` environment variable (a comma-separated
subset of ``dpor,transpo,rg-simplify,static-indep``; ``off`` disables
everything; unset/``on``/``all`` enables all four) or the ``reduce=``
keyword on the rule constructors, resolved explicit-arg-first like the
lint gate.
With every axis off the checkers take the exact seed code paths and
produce byte-identical certificates.

Accounting stays honest: every pruned-as-equivalent class, law
application and table hit is tallied into a ``reduction`` provenance
block (:mod:`repro.reduce.stats`) merged through re-stamping like
coverage, rendered by ``repro.obs explain``/``dashboard`` and recorded
in ledger run records.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import FrozenSet, Iterable, List, Optional, Union

from .fingerprint import state_fingerprint
from .stats import (
    ReductionStats,
    contribute,
    merge_reduction_maps,
    reduction_collector,
    tally_law,
    tally_prune,
)

#: Axis names.
DPOR = "dpor"
TRANSPO = "transpo"
RG_SIMPLIFY = "rg-simplify"
STATIC_INDEP = "static-indep"
ALL_AXES: FrozenSet[str] = frozenset({DPOR, TRANSPO, RG_SIMPLIFY, STATIC_INDEP})

#: The machine-level axes (those that change which game runs execute).
MACHINE_AXES: FrozenSet[str] = frozenset({DPOR, TRANSPO, STATIC_INDEP})

REDUCE_ENV = "REPRO_REDUCE"

_ALL = {"", "on", "all", "1", "true", "yes", "default"}
_NONE = {"off", "none", "0", "false", "no"}


def parse_axes(value: Union[None, str, Iterable[str]]) -> FrozenSet[str]:
    """Parse a reduction spec into a set of axes.

    ``None``/``"on"``/``"all"`` mean every axis, ``"off"``/``"none"``
    mean no reduction, otherwise a comma-separated (or iterable) subset
    of :data:`ALL_AXES`.  Unknown axis names raise ``ValueError`` so a
    typo can never silently disable a technique.
    """
    if value is None:
        return ALL_AXES
    if isinstance(value, (frozenset, set, tuple, list)):
        names = [str(part) for part in value]
    else:
        text = str(value).strip().lower()
        if text in _ALL:
            return ALL_AXES
        if text in _NONE:
            return frozenset()
        names = text.split(",")
    axes = frozenset(
        name.strip().lower().replace("_", "-")
        for name in names
        if name.strip()
    )
    unknown = axes - ALL_AXES
    if unknown:
        raise ValueError(
            f"unknown reduction axes {sorted(unknown)}; "
            f"valid axes: {sorted(ALL_AXES)} (or 'on'/'off')"
        )
    return axes


def axes_from_env() -> FrozenSet[str]:
    """The axes selected by ``REPRO_REDUCE`` (all three when unset)."""
    return parse_axes(os.environ.get(REDUCE_ENV))


def resolve_reduce(explicit: Union[None, str, Iterable[str]] = None) -> FrozenSet[str]:
    """Resolve the active axes: explicit argument > env > default (all).

    The same precedence as the lint gate's mode resolution: a rule
    constructor's ``reduce=`` argument wins over ``REPRO_REDUCE``, which
    wins over the all-on default.
    """
    if explicit is not None:
        return parse_axes(explicit)
    return axes_from_env()


_ACTIVE: List[FrozenSet[str]] = []


def current_axes() -> FrozenSet[str]:
    """The axes in effect for the innermost active rule application.

    Falls back to the environment when no rule has pushed an explicit
    configuration, so standalone enumeration calls are reduced too.
    """
    if _ACTIVE:
        return _ACTIVE[-1]
    return axes_from_env()


@contextmanager
def reduce_active(axes: Iterable[str]):
    """Pin the active axes for the duration of a rule application."""
    _ACTIVE.append(frozenset(axes))
    try:
        yield
    finally:
        _ACTIVE.pop()


__all__ = [
    "ALL_AXES",
    "DPOR",
    "MACHINE_AXES",
    "REDUCE_ENV",
    "RG_SIMPLIFY",
    "STATIC_INDEP",
    "TRANSPO",
    "ReductionStats",
    "axes_from_env",
    "contribute",
    "current_axes",
    "merge_reduction_maps",
    "parse_axes",
    "reduce_active",
    "reduction_collector",
    "resolve_reduce",
    "state_fingerprint",
    "tally_law",
    "tally_prune",
]
