"""The rely-guarantee law catalog (``rg-simplify``).

Small algebraic laws, in the style of the rely-guarantee refinement
calculi (Hayes/Meinicke — *Deriving Laws for Developing Concurrent
Programs in a Rely-Guarantee Style*; *Generalised rely-guarantee
concurrency: An algebraic foundation*), that discharge or fuse
obligations before any machine run.  Each law application is tallied
(:func:`repro.reduce.stats.tally_law`) under its catalog name:

``strengthen-guarantee``
    A *prefix-closed* guarantee invariant (one whose violations are
    permanent: ``inv(l·e) ⇒ inv(l)``) that holds of a run's last
    checked snapshot holds of every earlier snapshot, because the log
    only grows.  The per-query stepwise checks in ``run_local`` are
    subsumed by a single check of the last snapshot — verdict-identical
    by construction.  Applied in :func:`repro.core.machine.run_local`.

``weaken-rely``
    An unconstrained rely condition (``TRUE_INV``) needs no prefix
    walk, and a prefix-closed rely condition holds of every environment
    prefix iff it holds of the longest one.  Applied in
    :func:`repro.core.simulation.env_events_valid`.

``frame``
    An invariant with a declared event-name ``footprint`` is constant
    under events outside it (``inv(l·e) = inv(l)`` when ``e.name ∉
    footprint``), so a re-check whose log delta misses the footprint is
    skipped.  Applied in ``run_local`` for non-prefix-closed
    guarantees; the soundness of a declared footprint is the caller's
    obligation (see DESIGN.md).

``merge-compatible-obligations``
    ``Compat`` implications ``R(i) ⊆ G(i)`` are discharged without a
    log-universe scan when they hold structurally
    (:func:`structurally_implies`), and refinement witness searches are
    shared between low-level runs with identical sched-erased logs
    (:func:`repro.core.contextual.check_refinement`).

Soundness caveats (also in DESIGN.md): ``prefix_closed`` and
``footprint`` are trusted declarations on :class:`~repro.core.rely_guarantee.LogInvariant`
(the built-in builders are proved prefix-closed by violation
monotonicity; combinators propagate both conservatively), and
structural implication matches conjuncts by object identity *or name
equality* — invariant names in this repo are content-derived, but a
user who reuses a name across semantically different invariants
voids the discharge.  ``REPRO_REDUCE=off`` restores the exhaustive
checks.
"""

from __future__ import annotations

from typing import Iterable

STRENGTHEN_GUARANTEE = "strengthen-guarantee"
WEAKEN_RELY = "weaken-rely"
FRAME = "frame"
MERGE_COMPATIBLE = "merge-compatible-obligations"


def structurally_implies(antecedent, consequent) -> bool:
    """``antecedent ⊆ consequent`` by structure, without a universe scan.

    True when the consequent is trivially true, is the antecedent
    itself, or appears among the antecedent's conjuncts (by identity or
    by name — names are content-derived in this repo; see the module
    docstring for the caveat).
    """
    if consequent is antecedent:
        return True
    if getattr(consequent, "always_true", False):
        return True
    name = getattr(consequent, "name", None)
    conjuncts = getattr(antecedent, "conjuncts", None)
    parts = conjuncts() if callable(conjuncts) else [antecedent]
    for part in parts:
        if part is consequent or (name is not None and part.name == name):
            return True
    return False


def frame_allows_skip(invariant, delta_events: Iterable) -> bool:
    """Whether a re-check of ``invariant`` may be skipped for this delta.

    Requires a declared footprint and a delta entirely outside it.
    """
    footprint = getattr(invariant, "footprint", None)
    if footprint is None:
        return False
    return not any(event.name in footprint for event in delta_events)
