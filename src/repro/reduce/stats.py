"""Reduction accounting: pruned classes, law applications, table hits.

Reduction must never silently change what a certificate claims was
explored, so every pruning decision is tallied and surfaced through
certificate provenance (a ``reduction`` block shaped like the coverage
map), the run ledger, ``repro.obs explain`` and the dashboard.

The block schema::

    {
      "axes":   ["dpor", "transpo", ...],        # axes active
      "pruned": {"dpor": n, "transpo": n},        # equivalence classes cut
      "laws":   {"strengthen-guarantee": n, ...}, # rg-simplify applications
      "table":  {"hits": h, "misses": m, "hit_rate": r},
    }

Zero-valued sections are omitted; an all-empty block is dropped
entirely, so certificates verified with reduction off gain no new
provenance fields.

Checkers open a :func:`reduction_collector` around one obligation's
work; the enumeration core and the law sites report through
:func:`tally_prune` / :func:`tally_law` / :func:`contribute`.  Worker
processes return their collector's ``as_dict()`` record with their
results and the parent absorbs it in plan order, exactly like coverage
and redundancy records.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, FrozenSet, Iterable, List, Optional


class ReductionStats:
    """Counters for one collection scope (one obligation / subtree)."""

    __slots__ = ("axes", "pruned", "laws", "table_hits", "table_misses")

    def __init__(self, axes: Iterable[str] = ()):
        self.axes: FrozenSet[str] = frozenset(axes)
        self.pruned: Dict[str, int] = {}
        self.laws: Dict[str, int] = {}
        self.table_hits = 0
        self.table_misses = 0

    def prune(self, axis: str, count: int = 1) -> None:
        """``count`` schedules/branches cut as equivalent under ``axis``."""
        if count:
            self.pruned[axis] = self.pruned.get(axis, 0) + count

    def law(self, name: str, count: int = 1) -> None:
        """``count`` applications of one rg-simplify law."""
        if count:
            self.laws[name] = self.laws.get(name, 0) + count

    def table(self, hit: bool) -> None:
        if hit:
            self.table_hits += 1
        else:
            self.table_misses += 1

    @property
    def any(self) -> bool:
        return bool(
            self.pruned or self.laws or self.table_hits or self.table_misses
        )

    def absorb(self, record: Optional[Dict[str, Any]]) -> None:
        """Fold a worker's ``as_dict()`` record into this collector."""
        if not record:
            return
        self.axes = self.axes | frozenset(record.get("axes", ()))
        for axis, count in (record.get("pruned") or {}).items():
            self.prune(axis, count)
        for name, count in (record.get("laws") or {}).items():
            self.law(name, count)
        table = record.get("table") or {}
        self.table_hits += table.get("hits", 0)
        self.table_misses += table.get("misses", 0)

    def absorb_stats(self, other: "ReductionStats") -> None:
        self.axes = self.axes | other.axes
        for axis, count in other.pruned.items():
            self.prune(axis, count)
        for name, count in other.laws.items():
            self.law(name, count)
        self.table_hits += other.table_hits
        self.table_misses += other.table_misses

    def as_dict(self) -> Dict[str, Any]:
        """The provenance/ledger record (empty dict when nothing fired)."""
        if not self.any:
            return {}
        out: Dict[str, Any] = {"axes": sorted(self.axes)}
        if self.pruned:
            out["pruned"] = dict(sorted(self.pruned.items()))
        if self.laws:
            out["laws"] = dict(sorted(self.laws.items()))
        if self.table_hits or self.table_misses:
            total = self.table_hits + self.table_misses
            out["table"] = {
                "hits": self.table_hits,
                "misses": self.table_misses,
                "hit_rate": round(self.table_hits / total, 4),
            }
        return out


def merge_reduction_maps(
    records: Iterable[Optional[Dict[str, Any]]],
) -> Optional[Dict[str, Any]]:
    """Merge ``reduction`` blocks (provenance inheritance / ledger rollup)."""
    merged = ReductionStats()
    for record in records:
        merged.absorb(record)
    return merged.as_dict() or None


#: Ambient collector stack.  Checkers push a collector around one
#: obligation's work; the enumeration core and law sites tally into
#: every active collector (nesting is not expected but is harmless).
_COLLECTORS: List[ReductionStats] = []


@contextmanager
def reduction_collector(axes: Iterable[str] = ()):
    """Collect reduction tallies for one scope; yields the stats."""
    stats = ReductionStats(axes)
    _COLLECTORS.append(stats)
    try:
        yield stats
    finally:
        _COLLECTORS.pop()


def tally_law(name: str, count: int = 1) -> None:
    for collector in _COLLECTORS:
        collector.law(name, count)


def tally_prune(axis: str, count: int = 1) -> None:
    for collector in _COLLECTORS:
        collector.prune(axis, count)


def contribute(stats: ReductionStats) -> None:
    """Fold a locally built stats object into the ambient collectors."""
    for collector in _COLLECTORS:
        collector.absorb_stats(stats)
