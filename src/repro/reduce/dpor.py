"""DPOR path extension, sleep sets and the transposition table.

The exhaustive game enumerator (:func:`repro.core.machine.enumerate_game_logs`)
explores scheduling-decision prefixes.  The seed engine replays a whole
game per prefix just to reach one new decision point; this module
supplies a scheduler that instead *extends* the path at each decision
point (recording the sibling branches for later), keeps sleep sets that
suppress schedules equivalent to already-explored ones, and cuts runs
whose state was already explored.

Independence relation (``dpor``)
    A scheduling step is *silent* when it appends no non-sched event.
    Under the lint discipline (I201: every shared observation emits an
    event; I202: private primitives touch only ``ctx.priv``) a silent
    step neither reads nor writes shared state, so it commutes with
    every adjacent step modulo hardware-scheduling events.  Silence is
    the only independence oracle the scheduler can observe (a step's
    footprint is known only after it executes), which shapes both
    pruning rules below.

    *First-branch dominance*: when the chosen step at a decision turns
    out silent, its siblings are pruned — every schedule in a sibling
    subtree maps, by commuting the silent step to the front, onto an
    equivalent schedule in the chosen subtree.  Two guards keep the
    mapping total: a step that finishes its player is never treated as
    silent (the mapped schedule could report an extra return value), and
    the final segment of a run is resolved conservatively (kept).

    *Sleep sets*: when a sibling branch ``t`` is explored after its
    earlier siblings, those earlier participants go to sleep in ``t``'s
    subtree for as long as the executed steps stay silent (each silent
    step commutes with the sleeping participant's pending step, so
    waking it would replay, one adjacent transposition at a time, a
    schedule inside an earlier sibling's subtree).  A non-silent step
    may conflict with the pending step, so it wakes everyone.  Sleeping
    participants are excluded from branching; when every ready
    participant is asleep the whole continuation is covered and the run
    is cut.  Commuting adjacent steps preserves schedule length, so
    sleep pruning is exact even at the ``max_rounds`` boundary.

State key (``transpo``)
    At every post-script scheduling point the scheduler fingerprints
    ``(non-sched log, per-participant step counts, ready set, sleep
    set)`` with the profiler's own hash-consing helper.  Deterministic
    lint-clean players are a function of exactly that state: the log
    *is* the shared state in the push/pull model, each player's
    observations are replay-determined by its events' positions in the
    log, and the step counts pin down program points that silent steps
    do not surface in the log.  The sleep set is part of the key
    because a revisit carrying a *smaller* sleep set owes schedules the
    first visit suppressed — the classic unsound interaction between
    sleep sets and state caching — so only a state revisited with an
    identical sleep set is cut.  Keys are only consulted past the
    decision script (replaying a recorded prefix must not cut itself)
    and the table is scoped to one explored subtree — the same scope
    serially and under ``REPRO_JOBS``, which is what keeps reduced
    enumeration byte-stable across worker counts.

Static independence seeds (``static-indep``)
    The interprocedural dependency analysis
    (:mod:`repro.analysis.independence`) classifies whole players as
    *invisible*: every primitive in their transitive slice appends no
    event, queries nothing, reads neither log nor buffer, opens no
    critical bracket, and touches ``ctx`` only through thread-private
    state.  Such a player's single step commutes with **every** other
    step — including the finishing step the dynamic rule must keep,
    because the static argument shows the return value is deterministic
    and position-independent.  The scheduler therefore *defers* an
    invisible participant instead of branching on it: at a
    multi-candidate decision, invisible siblings are dropped (their
    subtrees map, by delaying the invisible step, onto schedules inside
    the kept subtrees), while the participant itself stays schedulable
    and still runs at later forced or first-candidate rounds, so every
    completion is preserved.  Invisible participants never enter sleep
    sets — sleep suppresses a participant outright, deferral only
    refuses to branch on it.  One honest caveat, recorded in DESIGN.md
    §5: a run that hits the ``max_rounds`` bound with a deferred
    invisible step in its final round is merged with its bound-hitting
    siblings; verdicts are unaffected (the truncated runs differ only
    in the invisible player's private return), and passing stacks never
    truncate.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .fingerprint import extend_chain, state_fingerprint
from .stats import ReductionStats

DPOR = "dpor"
TRANSPO = "transpo"
STATIC_INDEP = "static-indep"


class PruneRun(Exception):
    """Cut the current game run: its continuation was already explored."""


class DeferRun(Exception):
    """Cut the current subtree at the frontier for a worker process."""


class TranspositionTable:
    """Hash-consed set of explored state fingerprints (one subtree)."""

    __slots__ = ("keys", "stats")

    def __init__(self, stats: ReductionStats):
        self.keys: Set[int] = set()
        self.stats = stats

    def seen(self, key: int) -> bool:
        if key in self.keys:
            self.stats.table(hit=True)
            return True
        self.keys.add(key)
        self.stats.table(hit=False)
        return False


class ReducingScheduler:
    """Scripted scheduler with path extension, sleep sets, transposition.

    Follows ``script`` exactly (the recorded decision prefix), then
    keeps choosing the smallest awake ready participant instead of
    raising ``NeedChoice`` — recording sibling branches in ``branches``
    as ``(depth, siblings)`` pairs, where ``depth`` indexes into
    ``picks``.  Only multi-candidate rounds consume a script entry or
    record a pick; rounds forced by a singleton ready set or by sleep
    are replayed positionally, which is what lets a recorded prefix
    rebuild the very sleep sets that forced them.

    Duck-typed against :class:`repro.core.machine.GameScheduler`; it
    lives here so the reduction engine carries no import of the machine.
    """

    __slots__ = (
        "script", "cursor", "dpor", "table", "stats", "frontier_depth",
        "redundancy", "picks", "counts", "branches", "sleep", "invisible",
        "_sleep_next", "_pending", "_scanned", "_chain",
    )

    def __init__(
        self,
        script: Tuple[int, ...],
        axes: FrozenSet[str],
        stats: ReductionStats,
        table: Optional[TranspositionTable] = None,
        frontier_depth: Optional[int] = None,
        redundancy=None,
        invisible: FrozenSet[int] = frozenset(),
    ):
        self.script = tuple(script)
        self.cursor = 0
        self.dpor = DPOR in axes
        self.table = table if TRANSPO in axes else None
        #: Statically invisible participants (``static-indep`` seeds):
        #: never branched on as siblings, still schedulable.
        self.invisible = invisible if STATIC_INDEP in axes else frozenset()
        self.stats = stats
        self.frontier_depth = frontier_depth
        self.redundancy = redundancy
        #: Decision picks made so far (script + extensions).
        self.picks: List[int] = list(script)
        #: Per-participant scheduled-step counts (every round).
        self.counts: Dict[int, int] = {}
        #: Resolved sibling groups: ``(depth, [sibling tids])``.
        self.branches: List[Tuple[int, List[int]]] = []
        #: Participants whose pending step commutes into an explored
        #: subtree; excluded from scheduling until a non-silent step.
        self.sleep: FrozenSet[int] = frozenset()
        #: Sleep set to install if the step just taken stays silent.
        self._sleep_next: Optional[FrozenSet[int]] = None
        #: Unresolved last decision: ``(chosen, siblings, depth, chain)``.
        self._pending: Optional[Tuple[int, List[int], int, int]] = None
        self._scanned = 0
        self._chain = 0

    def pick(self, log, ready: FrozenSet[int]) -> int:
        events = log.events
        chain = self._chain
        for event in events[self._scanned:]:
            if not event.is_sched():
                chain = extend_chain(chain, event)
        silent = chain == self._chain and self._scanned
        self._chain = chain
        self._scanned = len(events)
        if self.dpor:
            if self._sleep_next is not None:
                self.sleep = self._sleep_next if silent else frozenset()
                self._sleep_next = None
            if self.sleep:
                self.sleep = self.sleep & ready
        self._resolve(ready)
        candidates = sorted(ready - self.sleep) if self.sleep else sorted(ready)
        if not candidates:
            # Every ready participant is asleep: each continuation
            # commutes, transposition by transposition, into a subtree
            # explored under an earlier sibling.
            self.stats.prune(DPOR)
            raise PruneRun()
        if self.cursor < len(self.script):
            if len(candidates) == 1:
                # A forced round (singleton ready set, or sleep left one
                # participant awake) recorded no pick, so it consumes no
                # script entry on replay either.
                tid = candidates[0]
                self._sleep_next = self.sleep
            else:
                tid = self.script[self.cursor]
                self.cursor += 1
                if tid not in ready:
                    # Stale decision (participant already finished):
                    # pick deterministically, as ScriptScheduler does.
                    tid = candidates[0]
                else:
                    # Rebuild the sleep set along the recorded path:
                    # siblings explored before ``tid`` go (or stay)
                    # asleep while its step is silent.  Invisible
                    # participants were never explored as siblings
                    # (deferral dropped them), so they must stay awake —
                    # their completion happens inside this subtree.
                    self._sleep_next = self.sleep | frozenset(
                        t for t in candidates
                        if t < tid and t not in self.invisible
                    )
            self.counts[tid] = self.counts.get(tid, 0) + 1
            return tid
        if self.table is not None and self.table.seen(
            state_fingerprint(
                chain, tuple(sorted(self.counts.items())), ready, self.sleep
            )
        ):
            self.stats.prune(TRANSPO)
            raise PruneRun()
        if len(candidates) == 1:
            tid = candidates[0]
            self._sleep_next = self.sleep
        else:
            if (
                self.frontier_depth is not None
                and len(self.picks) >= self.frontier_depth
            ):
                raise DeferRun()
            if self.redundancy is not None:
                self.redundancy.branch(len(candidates))
            tid = candidates[0]
            siblings = candidates[1:]
            if self.invisible:
                # Static deferral: an invisible sibling's subtree maps,
                # by delaying its purely local step, onto schedules in
                # the kept subtrees; the participant itself stays
                # schedulable at later rounds.
                kept = [s for s in siblings if s not in self.invisible]
                if len(kept) != len(siblings):
                    self.stats.prune(STATIC_INDEP, len(siblings) - len(kept))
                siblings = kept
            if self.dpor:
                self._pending = (tid, siblings, len(self.picks), chain)
                self._sleep_next = self.sleep
            elif siblings:
                self.branches.append((len(self.picks), siblings))
            self.picks.append(tid)
        self.counts[tid] = self.counts.get(tid, 0) + 1
        return tid

    def _resolve(self, ready: Optional[FrozenSet[int]]) -> None:
        pending = self._pending
        if pending is None:
            return
        self._pending = None
        chosen, siblings, depth, chain_before = pending
        silent = self._chain == chain_before
        still_running = ready is not None and chosen in ready
        if silent and still_running:
            # First-branch dominance: the chosen step touched no shared
            # state, so every sibling schedule commutes into the chosen
            # subtree.  (A finishing step left the ready set, so it is
            # conservatively kept.)
            self.stats.prune(DPOR, len(siblings))
        elif siblings:
            self.branches.append((depth, siblings))

    def finalize(self) -> None:
        """Resolve the last decision conservatively when the run ends."""
        pending = self._pending
        if pending is not None:
            self._pending = None
            _chosen, siblings, depth, _chain = pending
            if siblings:
                self.branches.append((depth, siblings))

    def fresh(self) -> "ReducingScheduler":  # pragma: no cover - protocol
        raise TypeError("ReducingScheduler instances are single-use")
