"""The shared state-fingerprint (hash-consing) helper.

One definition serves both the profiler's redundancy accounting
(:mod:`repro.obs.profile`) and the transposition table
(:mod:`repro.reduce.dpor`), so "replay-equivalent" means exactly the
same thing to the instrument that measures redundancy and to the engine
that removes it.

Fingerprints are Python hashes of immutable part tuples.  They are used
as identities (hash-consing), never dereferenced back to states; the
negligible collision probability is the same one the profiler has
always accepted for its distinct-state counts.
"""

from __future__ import annotations

from typing import Any


def state_fingerprint(*parts: Any) -> int:
    """A hash-consed fingerprint of an enumeration state.

    Parts must be hashable (logs, tuples, frozensets, scalars).  Equal
    part tuples always produce equal fingerprints; distinct tuples
    collide only with ordinary ``hash`` probability.
    """
    return hash(parts)


def extend_chain(chain: int, part: Any) -> int:
    """Extend an incremental fingerprint chain by one part.

    ``extend_chain`` lets hot loops fingerprint a growing sequence in
    O(1) per element instead of re-hashing the whole prefix: two equal
    sequences fold to equal chains.  Seed with any constant (0).
    """
    return hash((chain, part))
