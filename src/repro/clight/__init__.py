"""Mini-C ("ClightX"): the C dialect layer implementations are written in.

AST (:mod:`repro.clight.ast`), interface-parameterized operational
semantics (:mod:`repro.clight.semantics`), and a pretty-printer
(:mod:`repro.clight.pretty`).
"""

from .ast import (
    Arr,
    Assert,
    Assign,
    Binop,
    Break,
    Call,
    CFunction,
    Const,
    Continue,
    Expr,
    Fld,
    Glob,
    If,
    Return,
    Seq,
    Shared,
    Skip,
    Stmt,
    TranslationUnit,
    Tup,
    Unop,
    Var,
    While,
    binop,
    const,
    eq,
    ne,
    seq,
    var,
)
from .semantics import GLOBALS_KEY, Interp, c_func_impl, c_player, unit_globals
from .pretty import pretty_function, pretty_stmt, pretty_unit

__all__ = [name for name in dir() if not name.startswith("_")]
