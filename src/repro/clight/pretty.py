"""Indented pretty-printing of mini-C, for docs, examples and debugging."""

from __future__ import annotations

from .ast import (
    Assert,
    Assign,
    Break,
    Call,
    CFunction,
    Continue,
    If,
    Return,
    Seq,
    Skip,
    Stmt,
    TranslationUnit,
    While,
)

_INDENT = "    "


def pretty_stmt(stmt: Stmt, depth: int = 0) -> str:
    pad = _INDENT * depth
    if isinstance(stmt, Seq):
        return "\n".join(pretty_stmt(s, depth) for s in stmt.stmts)
    if isinstance(stmt, If):
        text = f"{pad}if ({stmt.cond}) {{\n{pretty_stmt(stmt.then, depth + 1)}\n{pad}}}"
        if not isinstance(stmt.els, Skip):
            text += f" else {{\n{pretty_stmt(stmt.els, depth + 1)}\n{pad}}}"
        return text
    if isinstance(stmt, While):
        return (
            f"{pad}while ({stmt.cond}) {{\n"
            f"{pretty_stmt(stmt.body, depth + 1)}\n{pad}}}"
        )
    if isinstance(stmt, (Assign, Call, Return, Break, Continue, Skip, Assert)):
        return pad + str(stmt)
    return pad + str(stmt)


def pretty_function(fn: CFunction, depth: int = 0) -> str:
    pad = _INDENT * depth
    params = ", ".join(f"uint {p}" for p in fn.params)
    header = f"{pad}void {fn.name}({params}) {{"
    body = pretty_stmt(fn.body, depth + 1)
    doc = f"{pad}/* {fn.doc} */\n" if fn.doc else ""
    return f"{doc}{header}\n{body}\n{pad}}}"


def pretty_unit(unit: TranslationUnit) -> str:
    parts = [f"/* translation unit {unit.name} (uint{unit.width_bits}) */"]
    for name in sorted(unit.functions):
        parts.append(pretty_function(unit.functions[name]))
    return "\n\n".join(parts)
