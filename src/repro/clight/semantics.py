"""Operational semantics of mini-C, parameterized by a layer interface.

The interpreter turns a :class:`~repro.clight.ast.CFunction` into a
*player* (see :mod:`repro.core.context`): primitive calls resolve against
the underlay interface and may query the environment; everything else is
a silent private transition, exactly as in the paper's machine model
("the transitions for instructions only change ρ, pm, and m", §3.1).

State mapping:

* locals/parameters — a per-invocation environment dict (the stack
  frame),
* CPU-private globals — ``ctx.priv["globals"]``, initialized per
  participant from the translation unit's initializer thunks,
* pulled shared blocks — the push/pull local copy
  (:func:`repro.machine.sharedmem.local_copy`); accessing a block that
  has not been pulled gets stuck (the data-race discipline).

Integer arithmetic wraps at the unit's width.  Every statement consumes
fuel and charges one simulated cycle (the cost model behind the §6
performance evaluation).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..core.context import ExecutionContext
from ..core.errors import Stuck
from ..core.machint import IntWidth
from ..machine.sharedmem import local_copy
from .ast import (
    Arr,
    Assert,
    Assign,
    Binop,
    Break,
    Call,
    CFunction,
    Const,
    Continue,
    Expr,
    Fld,
    Glob,
    If,
    Return,
    Seq,
    Shared,
    Skip,
    Stmt,
    TranslationUnit,
    Tup,
    Unop,
    Var,
    While,
)

# Control-flow outcomes threaded through statement execution.
_NORMAL = "normal"
_BREAK = "break"
_CONTINUE = "continue"
_RETURN = "return"

GLOBALS_KEY = "globals"


def unit_globals(ctx: ExecutionContext, unit: TranslationUnit) -> Dict[str, Any]:
    """This participant's instance of the unit's globals (lazily built)."""
    store = ctx.priv.setdefault(GLOBALS_KEY, {})
    for name, init in unit.globals.items():
        if name not in store:
            store[name] = init() if callable(init) else init
    return store


class Interp:
    """One translation unit interpreted over a layer interface."""

    def __init__(self, unit: TranslationUnit):
        self.unit = unit
        self.width = IntWidth(unit.width_bits)

    # -- expressions (pure) ---------------------------------------------------

    def eval(self, ctx: ExecutionContext, env: Dict[str, Any], expr: Expr) -> Any:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            if expr.name not in env:
                raise Stuck(f"undefined local {expr.name!r}")
            return env[expr.name]
        if isinstance(expr, Glob):
            store = unit_globals(ctx, self.unit)
            if expr.name not in store:
                raise Stuck(f"undefined global {expr.name!r}")
            return store[expr.name]
        if isinstance(expr, Shared):
            loc = self.eval(ctx, env, expr.loc)
            copies = local_copy(ctx)
            if loc not in copies:
                raise Stuck(
                    f"access to shared block {loc!r} without ownership "
                    f"(missing pull)"
                )
            return copies[loc]
        if isinstance(expr, Tup):
            return tuple(self.eval(ctx, env, item) for item in expr.items)
        if isinstance(expr, Arr):
            base = self.eval(ctx, env, expr.base)
            index = self.eval(ctx, env, expr.index)
            try:
                return base[index]
            except (TypeError, IndexError, KeyError) as err:
                raise Stuck(f"bad array access {expr}: {err}") from None
        if isinstance(expr, Fld):
            base = self.eval(ctx, env, expr.base)
            try:
                return base[expr.fieldname]
            except (TypeError, KeyError) as err:
                raise Stuck(f"bad field access {expr}: {err}") from None
        if isinstance(expr, Unop):
            return self._unop(expr.op, self.eval(ctx, env, expr.arg))
        if isinstance(expr, Binop):
            if expr.op == "&&":
                return 1 if (self._truthy(self.eval(ctx, env, expr.left))
                             and self._truthy(self.eval(ctx, env, expr.right))) else 0
            if expr.op == "||":
                return 1 if (self._truthy(self.eval(ctx, env, expr.left))
                             or self._truthy(self.eval(ctx, env, expr.right))) else 0
            return self._binop(
                expr.op,
                self.eval(ctx, env, expr.left),
                self.eval(ctx, env, expr.right),
            )
        raise Stuck(f"cannot evaluate expression {expr!r}")

    def _truthy(self, value: Any) -> bool:
        return bool(value)

    def _unop(self, op: str, value: Any) -> Any:
        if op == "-":
            return self.width.wrap(-value)
        if op == "!":
            return 0 if value else 1
        if op == "~":
            return self.width.wrap(~value)
        raise Stuck(f"unknown unary operator {op!r}")

    def _binop(self, op: str, left: Any, right: Any) -> Any:
        wrap = self.width.wrap
        if op == "+":
            return wrap(left + right)
        if op == "-":
            return wrap(left - right)
        if op == "*":
            return wrap(left * right)
        if op == "/":
            if right == 0:
                raise Stuck("division by zero")
            return wrap(left // right)
        if op == "%":
            if right == 0:
                raise Stuck("modulo by zero")
            return wrap(left % right)
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "&":
            return wrap(left & right)
        if op == "|":
            return wrap(left | right)
        if op == "^":
            return wrap(left ^ right)
        if op == "<<":
            return wrap(left << (right % max(self.width.bits, 1)))
        if op == ">>":
            return wrap(left >> (right % max(self.width.bits, 1)))
        raise Stuck(f"unknown binary operator {op!r}")

    # -- places (lvalues) -------------------------------------------------------

    def store(self, ctx: ExecutionContext, env: Dict[str, Any], place: Expr, value: Any) -> None:
        container, key = self._resolve_place(ctx, env, place)
        container[key] = value

    def _resolve_place(
        self, ctx: ExecutionContext, env: Dict[str, Any], place: Expr
    ) -> Tuple[Any, Any]:
        if isinstance(place, Var):
            return env, place.name
        if isinstance(place, Glob):
            return unit_globals(ctx, self.unit), place.name
        if isinstance(place, Shared):
            loc = self.eval(ctx, env, place.loc)
            copies = local_copy(ctx)
            if loc not in copies:
                raise Stuck(
                    f"write to shared block {loc!r} without ownership "
                    f"(missing pull)"
                )
            return copies, loc
        if isinstance(place, Arr):
            base = self.eval(ctx, env, place.base)
            index = self.eval(ctx, env, place.index)
            return base, index
        if isinstance(place, Fld):
            base = self.eval(ctx, env, place.base)
            return base, place.fieldname
        raise Stuck(f"not an lvalue: {place!r}")

    # -- statements (players) -----------------------------------------------------

    def exec_stmt(self, ctx: ExecutionContext, env: Dict[str, Any], stmt: Stmt):
        """Execute one statement; a generator returning a control signal."""
        ctx.consume_fuel()
        ctx.charge_cycles(1)
        if isinstance(stmt, Skip):
            return (_NORMAL, None)
        if isinstance(stmt, Assign):
            self.store(ctx, env, stmt.place, self.eval(ctx, env, stmt.value))
            return (_NORMAL, None)
        if isinstance(stmt, Seq):
            for sub in stmt.stmts:
                signal = yield from self.exec_stmt(ctx, env, sub)
                if signal[0] != _NORMAL:
                    return signal
            return (_NORMAL, None)
        if isinstance(stmt, If):
            branch = stmt.then if self._truthy(self.eval(ctx, env, stmt.cond)) else stmt.els
            signal = yield from self.exec_stmt(ctx, env, branch)
            return signal
        if isinstance(stmt, While):
            while self._truthy(self.eval(ctx, env, stmt.cond)):
                ctx.consume_fuel()
                signal = yield from self.exec_stmt(ctx, env, stmt.body)
                if signal[0] == _BREAK:
                    break
                if signal[0] == _RETURN:
                    return signal
            return (_NORMAL, None)
        if isinstance(stmt, Break):
            return (_BREAK, None)
        if isinstance(stmt, Continue):
            return (_CONTINUE, None)
        if isinstance(stmt, Return):
            value = (
                self.eval(ctx, env, stmt.value) if stmt.value is not None else None
            )
            return (_RETURN, value)
        if isinstance(stmt, Call):
            args = [self.eval(ctx, env, a) for a in stmt.args]
            if stmt.fn in self.unit.functions:
                ret = yield from self.run_function(ctx, stmt.fn, args)
            else:
                # An underlay primitive: the callee's specification decides
                # whether this is a query point.
                ret = yield from ctx.call(stmt.fn, *args)
            if stmt.dst is not None:
                self.store(ctx, env, stmt.dst, ret)
            return (_NORMAL, None)
        if isinstance(stmt, Assert):
            if not self._truthy(self.eval(ctx, env, stmt.cond)):
                raise Stuck(f"{stmt.message}: {stmt.cond}")
            return (_NORMAL, None)
        raise Stuck(f"cannot execute statement {stmt!r}")

    def run_function(self, ctx: ExecutionContext, name: str, args):
        fn = self.unit.functions.get(name)
        if fn is None:
            raise Stuck(f"undefined function {name!r} in unit {self.unit.name}")
        if len(args) != len(fn.params):
            raise Stuck(
                f"{name} expects {len(fn.params)} args, got {len(args)}"
            )
        env = dict(zip(fn.params, args))
        signal = yield from self.exec_stmt(ctx, env, fn.body)
        if signal[0] == _RETURN:
            return signal[1]
        if signal[0] == _NORMAL:
            return None
        raise Stuck(f"{name}: {signal[0]} outside a loop")


def c_player(unit: TranslationUnit, name: str) -> Callable:
    """Make a player running function ``name`` of ``unit``.

    This is ``LκM`` — the function body interpreted over whatever
    interface the execution context carries.
    """
    interp = Interp(unit)

    def player(ctx: ExecutionContext, *args):
        ret = yield from interp.run_function(ctx, name, list(args))
        return ret

    player.__name__ = f"c_{name}"
    return player


def c_func_impl(unit: TranslationUnit, name: str):
    """Package a unit function as a :class:`~repro.core.module.FuncImpl`."""
    from ..core.module import FuncImpl

    return FuncImpl(
        name=name,
        player=c_player(unit, name),
        source=unit.functions[name],
        lang="c",
    )
