"""Abstract syntax of the mini-C layer language ("ClightX").

Layer implementations in the paper are written in a C dialect (ClightX)
whose function bodies call the primitives of the underlay interface.  The
dialect here covers what the CertiKOS-style objects need:

* machine-integer arithmetic with wraparound (the ``uint`` of Fig. 3),
* locals, CPU-private globals, arrays and struct-like field access,
* access to pulled shared data (the local copy of the push/pull model),
* calls to underlay primitives and to other functions of the same
  translation unit,
* structured control flow (``if``/``while``/``break``/``continue``/
  ``return``).

Design notes: expressions are *pure* — calls appear only as statements
with an optional destination place (kernel C maps onto this form
directly, cf. ``uint myt = FAI_t();`` becoming
``Call(Var("myt"), "fai", [...])``).  Lvalues are *places*: nested
array/field paths rooted at a local, a global, or a pulled shared block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

# --- expressions ------------------------------------------------------------


class Expr:
    """Base class of pure expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    """An integer (or opaque) literal."""

    value: Any

    def __str__(self):
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A local variable or parameter (also usable as a place)."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class Glob(Expr):
    """A CPU-private global (also usable as a place root)."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class Shared(Expr):
    """The pulled local copy of a shared block (a place root).

    ``loc`` is an expression computing the block identifier; the block
    must have been pulled (otherwise access gets stuck — exactly the
    push/pull race discipline).
    """

    loc: Expr

    def __str__(self):
        return f"*shared[{self.loc}]"


@dataclass(frozen=True)
class Arr(Expr):
    """Array element ``base[index]`` (place when base is a place)."""

    base: Expr
    index: Expr

    def __str__(self):
        return f"{self.base}[{self.index}]"


@dataclass(frozen=True)
class Fld(Expr):
    """Struct field ``base.field`` (place when base is a place)."""

    base: Expr
    fieldname: str

    def __str__(self):
        return f"{self.base}.{self.fieldname}"


@dataclass(frozen=True)
class Tup(Expr):
    """Tuple construction — used to form composite addresses.

    Atomic cells and lock identifiers are structured names (e.g.
    ``("ticket_t", b)``); C code builds them with ``Tup``.  Models taking
    the address of a named field of a global object.
    """

    items: Tuple[Expr, ...]

    def __init__(self, items: Sequence[Expr]):
        object.__setattr__(self, "items", tuple(items))

    def __str__(self):
        return "&(" + ", ".join(str(i) for i in self.items) + ")"


@dataclass(frozen=True)
class Unop(Expr):
    op: str  # "-", "!", "~"
    arg: Expr

    def __str__(self):
        return f"{self.op}({self.arg})"


@dataclass(frozen=True)
class Binop(Expr):
    op: str  # + - * / % == != < <= > >= && || & | ^ << >>
    left: Expr
    right: Expr

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


# --- statements ---------------------------------------------------------------


class Stmt:
    """Base class of statements."""

    __slots__ = ()


@dataclass(frozen=True)
class Skip(Stmt):
    def __str__(self):
        return ";"


@dataclass(frozen=True)
class Assign(Stmt):
    """``place = expr;``"""

    place: Expr
    value: Expr

    def __str__(self):
        return f"{self.place} = {self.value};"


@dataclass(frozen=True)
class Seq(Stmt):
    stmts: Tuple[Stmt, ...]

    def __init__(self, stmts: Sequence[Stmt]):
        object.__setattr__(self, "stmts", tuple(stmts))

    def __str__(self):
        return " ".join(str(s) for s in self.stmts)


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: Stmt
    els: Stmt = Skip()

    def __str__(self):
        return f"if ({self.cond}) {{ {self.then} }} else {{ {self.els} }}"


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: Stmt = Skip()

    def __str__(self):
        return f"while ({self.cond}) {{ {self.body} }}"


@dataclass(frozen=True)
class Break(Stmt):
    def __str__(self):
        return "break;"


@dataclass(frozen=True)
class Continue(Stmt):
    def __str__(self):
        return "continue;"


@dataclass(frozen=True)
class Return(Stmt):
    value: Optional[Expr] = None

    def __str__(self):
        return f"return {self.value};" if self.value is not None else "return;"


@dataclass(frozen=True)
class Call(Stmt):
    """``dst = fn(args);`` — a primitive or same-unit function call.

    ``dst`` is an optional place receiving the return value.  The ``▷``
    query-point markers of the paper's pseudocode are implicit: whether a
    call queries the environment is decided by the callee's
    specification, not by the caller.
    """

    dst: Optional[Expr]
    fn: str
    args: Tuple[Expr, ...] = ()

    def __init__(self, dst: Optional[Expr], fn: str, args: Sequence[Expr] = ()):
        object.__setattr__(self, "dst", dst)
        object.__setattr__(self, "fn", fn)
        object.__setattr__(self, "args", tuple(args))

    def __str__(self):
        argstr = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dst} = " if self.dst is not None else ""
        return f"{prefix}{self.fn}({argstr});"


@dataclass(frozen=True)
class Assert(Stmt):
    """A checked assertion; failure gets the machine stuck.

    Not part of C proper — used by tests and by verification harnesses to
    embed invariant checks into interpreted code.
    """

    cond: Expr
    message: str = "assertion failed"

    def __str__(self):
        return f"assert({self.cond}); /* {self.message} */"


# --- functions and translation units ---------------------------------------------


@dataclass(frozen=True)
class CFunction:
    """A mini-C function definition."""

    name: str
    params: Tuple[str, ...]
    body: Stmt
    doc: str = ""

    def __init__(self, name: str, params: Sequence[str], body: Union[Stmt, Sequence[Stmt]], doc: str = ""):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "params", tuple(params))
        if not isinstance(body, Stmt):
            body = Seq(list(body))
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "doc", doc)

    def __str__(self):
        params = ", ".join(f"uint {p}" for p in self.params)
        return f"void {self.name}({params}) {{ {self.body} }}"


@dataclass
class TranslationUnit:
    """A set of functions plus global declarations.

    ``globals`` maps names to initializer thunks (called per participant
    to build that CPU's private globals — arrays must not be shared
    between contexts).  ``width_bits`` fixes the unit's machine-integer
    width.
    """

    name: str
    functions: Dict[str, CFunction] = field(default_factory=dict)
    globals: Dict[str, Any] = field(default_factory=dict)
    width_bits: int = 32

    def add(self, fn: CFunction) -> "TranslationUnit":
        self.functions[fn.name] = fn
        return self

    def source_lines(self) -> int:
        """Approximate source size (for the Table 2 inventory)."""
        return sum(
            str(fn).count(";") + str(fn).count("{") for fn in self.functions.values()
        )

    def __repr__(self):
        return f"TranslationUnit({self.name}: {sorted(self.functions)})"


# Convenience constructors -----------------------------------------------------


def seq(*stmts: Stmt) -> Stmt:
    return Seq(list(stmts))


def var(name: str) -> Var:
    return Var(name)


def const(value: Any) -> Const:
    return Const(value)


def binop(op: str, left: Expr, right: Expr) -> Binop:
    return Binop(op, left, right)


def eq(left: Expr, right: Expr) -> Binop:
    return Binop("==", left, right)


def ne(left: Expr, right: Expr) -> Binop:
    return Binop("!=", left, right)
