"""Condition variables over the queuing lock (Fig. 1's ``CV``).

The classic monitor pattern, built exactly the way Fig. 1's arrows say:
condition variables call into the queuing lock and the scheduler's
sleep/wakeup primitives.

* ``cv_wait(cv, l)`` — atomically release queuing lock ``l`` and block
  on the condition's sleeping channel; re-acquire ``l`` before
  returning.  Atomicity comes from doing the release *inside* the
  spinlock-protected sleep, the same lost-wakeup-free structure as
  ``acq_q``.
* ``cv_signal(cv)`` — wake one waiter (no-op if none).
* ``cv_broadcast(cv)`` — wake all current waiters.

Mesa semantics: a signalled waiter re-acquires the lock and must re-check
its predicate (signals are hints, not handoffs) — which is why the
bounded-buffer example in ``examples/`` uses ``while`` loops around
waits.

Checked by :func:`check_condvar_correctness`: under every bounded
schedule of a producer/consumer system, no run sticks, every run
completes, and the monitor invariant holds at every critical entry.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.certificate import Certificate
from ..core.context import ExecutionContext
from ..core.errors import Stuck
from ..core.events import SLEEP, WAKEUP
from ..core.log import Log
from ..machine.sharedmem import local_copy
from .local_queue import NIL
from .qlock import acq_q_impl, ql_loc, rel_q_impl
from .sched import CpuMap, replay_slpq


def cv_chan(cv: Any) -> Tuple[str, Any]:
    """The sleeping-queue channel of condition variable ``cv``."""
    return ("cv", cv)


def cv_wait_impl(ctx: ExecutionContext, cv, lock):
    """Release ``lock``, block on ``cv``, re-acquire ``lock``.

    The monitor-lock release (``rel_q``'s body) is *inlined under the
    spinlock* together with the condition enqueue: a signaller can only
    hold the monitor lock after our handoff, and must take the same
    spinlock to wake — so its signal necessarily observes our enqueue.
    Releasing the monitor lock before taking the spinlock would open the
    classic lost-signal window.
    """
    from .qlock import ql_chan

    yield from ctx.call("acq", ql_loc(lock))
    copy = local_copy(ctx)[ql_loc(lock)]
    if copy is None or copy.get("busy") != ctx.tid:
        raise Stuck(
            f"cv_wait({cv}) by {ctx.tid} without holding the monitor lock"
        )
    # Hand the monitor lock to the next qlock waiter (or free it) ...
    woken = yield from ctx.call("wakeup", ql_chan(lock))
    copy["busy"] = woken
    # ... and atomically enqueue on the condition channel; the sleep
    # releases the spinlock inside the scheduler.
    yield from ctx.call("sleep", cv_chan(cv), ql_loc(lock))
    # Re-acquire the monitor lock before returning (Mesa semantics).
    yield from acq_q_impl(ctx, lock)
    return None


def cv_signal_impl(ctx: ExecutionContext, cv, lock):
    """Wake one waiter.  Caller must hold the monitor lock."""
    yield from ctx.call("acq", ql_loc(lock))
    woken = yield from ctx.call("wakeup", cv_chan(cv))
    yield from ctx.call("rel", ql_loc(lock))
    return woken


def cv_broadcast_impl(ctx: ExecutionContext, cv, lock):
    """Wake every current waiter.  Caller must hold the monitor lock."""
    woken: List[int] = []
    while True:
        ctx.consume_fuel()
        yield from ctx.call("acq", ql_loc(lock))
        tid = yield from ctx.call("wakeup", cv_chan(cv))
        yield from ctx.call("rel", ql_loc(lock))
        if tid == NIL:
            break
        woken.append(tid)
    return woken


def condvar_unit():
    """The mini-C source of the condition-variable operations."""
    from ..clight.ast import (
        Break,
        Call,
        CFunction,
        Const,
        If,
        Return,
        Seq,
        TranslationUnit,
        Tup,
        Var,
        While,
        eq,
    )

    from ..clight.ast import Assign, Fld, Shared

    def loc():
        return Tup([Const("ql"), Var("l")])

    def qchan():
        return Tup([Const("qlock"), Var("l")])

    def chan():
        return Tup([Const("cv"), Var("cv")])

    wait = CFunction(
        "cv_wait",
        ["cv", "l"],
        Seq(
            [
                Call(None, "acq", [loc()]),
                # Inline the monitor-lock handoff under the spinlock ...
                Call(Var("w"), "wakeup", [qchan()]),
                Assign(Fld(Shared(loc()), "busy"), Var("w")),
                # ... and atomically enqueue on the condition channel.
                Call(None, "sleep", [chan(), loc()]),
                Call(None, "acq_q", [Var("l")]),
            ]
        ),
        doc="atomically release the monitor lock and wait (Mesa)",
    )
    signal = CFunction(
        "cv_signal",
        ["cv", "l"],
        Seq(
            [
                Call(None, "acq", [loc()]),
                Call(Var("w"), "wakeup", [chan()]),
                Call(None, "rel", [loc()]),
                Return(Var("w")),
            ]
        ),
        doc="wake one waiter",
    )
    broadcast = CFunction(
        "cv_broadcast",
        ["cv", "l"],
        Seq(
            [
                While(
                    Const(1),
                    Seq(
                        [
                            Call(None, "acq", [loc()]),
                            Call(Var("w"), "wakeup", [chan()]),
                            Call(None, "rel", [loc()]),
                            If(eq(Var("w"), Const(NIL)), Break()),
                        ]
                    ),
                ),
            ]
        ),
        doc="wake all waiters",
    )
    unit = TranslationUnit("condvar")
    unit.add(wait)
    unit.add(signal)
    unit.add(broadcast)
    return unit


# --- correctness check: a bounded buffer monitor ------------------------------------


def bounded_buffer_players(
    lock: Any,
    cv_notempty: Any,
    cv_notfull: Any,
    capacity: int,
    producers: Dict[int, int],
    consumers: Dict[int, int],
):
    """Producer/consumer players over a shared bounded buffer.

    The buffer lives in the qlock-protected shared block; producers wait
    on ``notfull``, consumers on ``notempty`` — the monitor workload the
    paper's Fig. 1 synchronization libraries exist for.
    """

    def with_block(ctx, fn):
        """Access the protected block under the spinlock.

        The monitor-lock holder does not own the shared block (the
        spinlock does); data accesses in the qlock critical section take
        the spinlock briefly — uncontended, since the qlock serializes
        the monitor.
        """
        yield from ctx.call("acq", ql_loc(lock))
        copy = local_copy(ctx)[ql_loc(lock)]
        copy.setdefault("items", [])
        result = fn(copy)
        yield from ctx.call("rel", ql_loc(lock))
        return result

    def producer(count):
        def player(ctx):
            produced = []
            for index in range(count):
                yield from acq_q_impl(ctx, lock)
                while True:
                    full = yield from with_block(
                        ctx, lambda c: len(c["items"]) >= capacity
                    )
                    if not full:
                        break
                    yield from cv_wait_impl(ctx, cv_notfull, lock)
                item = (ctx.tid, index)
                yield from with_block(ctx, lambda c: c["items"].append(item))
                produced.append(item)
                yield from cv_signal_impl(ctx, cv_notempty, lock)
                yield from rel_q_impl(ctx, lock)
            return ("produced", produced)

        return player

    def consumer(count):
        def player(ctx):
            consumed = []
            for _ in range(count):
                yield from acq_q_impl(ctx, lock)
                while True:
                    empty = yield from with_block(
                        ctx, lambda c: not c["items"]
                    )
                    if not empty:
                        break
                    yield from cv_wait_impl(ctx, cv_notempty, lock)
                item = yield from with_block(ctx, lambda c: c["items"].pop(0))
                consumed.append(item)
                yield from cv_signal_impl(ctx, cv_notfull, lock)
                yield from rel_q_impl(ctx, lock)
            return ("consumed", consumed)

        return player

    players = {}
    for tid, count in producers.items():
        players[tid] = (producer(count), ())
    for tid, count in consumers.items():
        players[tid] = (consumer(count), ())
    return players


def check_condvar_correctness(
    cpus: CpuMap,
    init_current: Dict[int, int],
    producers: Dict[int, int],
    consumers: Dict[int, int],
    capacity: int = 1,
    lock: Any = 11,
    fuel: int = 60_000,
    max_rounds: int = 1_000,
    max_choice_depth: int = 8,
) -> Certificate:
    """Exhaustive bounded-buffer monitor check over the thread layer.

    Obligations per schedule: safety (no stuck run), progress (every
    producer and consumer finishes — requires signals never lost), and
    conservation (the multiset of consumed items equals the produced
    ones, FIFO per producer).
    """
    from ..objects.qlock import ql_alloc_prim
    from ..threads.interface import build_lhtd
    from ..threads.linking import enumerate_thread_games

    interface = build_lhtd(cpus, init_current, locks=[ql_loc(lock)])
    interface = interface.extend(interface.name, [ql_alloc_prim()])
    players = bounded_buffer_players(
        lock, ("ne", lock), ("nf", lock), capacity, producers, consumers
    )
    results = enumerate_thread_games(
        interface, players, cpus, init_current,
        fuel=fuel, max_rounds=max_rounds, max_choice_depth=max_choice_depth,
    )
    total_produced = sum(producers.values())
    total_consumed = sum(consumers.values())
    cert = Certificate(
        judgment="bounded-buffer monitor over CV + qlock",
        rule="condvar-correctness",
        bounds={
            "schedules": len(results),
            "capacity": capacity,
            "produced": total_produced,
        },
    )
    cert.add("at least one schedule explored", bool(results))
    for result in results:
        label = f"sched={result.schedule[:8]}..."
        cert.add(f"run safe [{label}]", result.stuck is None, result.stuck or "")
        if total_produced == total_consumed:
            cert.add(
                f"run completes [{label}]",
                result.finished,
                f"unfinished after {result.rounds} rounds",
            )
        if result.finished:
            produced = []
            consumed = []
            for ret in result.rets.values():
                if isinstance(ret, tuple) and ret[0] == "produced":
                    produced.extend(ret[1])
                elif isinstance(ret, tuple) and ret[0] == "consumed":
                    consumed.extend(ret[1])
            # Items round-trip through freeze/thaw in push events, so
            # tuples may come back as lists — normalize before comparing.
            norm = lambda items: sorted(tuple(i) for i in items)
            cert.add(
                f"conservation [{label}]",
                norm(produced) == norm(consumed),
                f"{norm(produced)} vs {norm(consumed)}",
            )
    cert.log_universe = tuple(r.log for r in results)
    return cert