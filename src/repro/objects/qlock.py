"""The certified queuing lock (paper §5.4, Fig. 11).

"With queuing locks, waiting threads are put to sleep to avoid busy
spinning.  Reasoning about this locking algorithm is particularly
challenging since its C implementation utilizes both spinlocks and
low-level scheduler primitives (i.e., sleep and wakeup)."

The implementation is Fig. 11 verbatim (NIL = 0 plays the paper's -1)::

    void acq_q(uint l) {              void rel_q(uint l) {
        ▷acq(ql_loc(l));                  ▷acq(ql_loc(l));
        if (ql_busy[l] != NIL) {          ql_busy[l] = ▷wakeup(l);
            ▷sleep(l);                    ▷rel(ql_loc(l));
        } else {                      }
            ql_busy[l] = get_tid();
            ▷rel(ql_loc(l));
        }
    }

``ql_busy`` lives in the spinlock-protected shared block; ``sleep(l)``
enqueues the caller on the sleeping queue *while the spinlock is held*
and releases it inside the scheduler — the atomicity that rules out lost
wakeups.  Release *hands the lock off*: the woken thread returns from
``acq_q`` already holding it (``ql_busy`` is set to the woken thread's
id by the releaser).

Correctness (§5.4) is "mutual exclusion and starvation freedom":

* mutual exclusion — "the busy value of the lock is always equal to the
  lock holder's thread ID": :func:`busy_matches_holder` checks the
  invariant on every reachable prefix of every bounded schedule.
* starvation freedom — "the starvation-freedom proof is mainly about
  the termination of the sleep primitive call": every bounded-schedule
  game completes, i.e. every sleeper is eventually woken and runs.

Both are discharged by :func:`check_qlock_correctness` via exhaustive
thread-game enumeration; the atomic overlay (:func:`qlock_atomic_specs`)
gives the same one-event-per-operation interface as the spinlocks, so
higher layers (condition variables, IPC) are lock-implementation
agnostic here too.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.certificate import Certificate
from ..core.context import ExecutionContext
from ..core.errors import Stuck
from ..core.events import ACQ, ACQ_Q, Event, REL, REL_Q, SLEEP, WAKEUP
from ..core.interface import LayerInterface, Prim
from ..core.log import Log
from ..machine.sharedmem import local_copy
from .local_queue import NIL
from .sched import CpuMap
from .ticket_lock import replay_lock


def ql_loc(lock: Any) -> Tuple[str, Any]:
    """The spinlock (and shared block) protecting queuing lock ``lock``."""
    return ("ql", lock)


def ql_chan(lock: Any) -> Tuple[str, Any]:
    """The sleeping-queue channel of queuing lock ``lock``."""
    return ("qlock", lock)


# --- implementation ---------------------------------------------------------------


def acq_q_impl(ctx: ExecutionContext, lock):
    """Fig. 11 ``acq_q`` (Python twin of the mini-C source)."""
    yield from ctx.call(ACQ, ql_loc(lock))
    copy = local_copy(ctx)[ql_loc(lock)]
    if copy is None:
        copy = {"busy": NIL}
        local_copy(ctx)[ql_loc(lock)] = copy
    if copy["busy"] != NIL:
        # Busy: sleep releases the spinlock inside the scheduler and the
        # releaser hands the lock to us directly.
        yield from ctx.call(SLEEP, ql_chan(lock), ql_loc(lock))
    else:
        copy["busy"] = ctx.tid
        yield from ctx.call(REL, ql_loc(lock))
    return None


def rel_q_impl(ctx: ExecutionContext, lock):
    """Fig. 11 ``rel_q``: hand off to the first sleeper (or free)."""
    yield from ctx.call(ACQ, ql_loc(lock))
    copy = local_copy(ctx)[ql_loc(lock)]
    if copy is None:
        raise Stuck(f"rel_q({lock}) before any acquisition")
    if copy["busy"] != ctx.tid:
        raise Stuck(
            f"rel_q({lock}) by {ctx.tid} but holder is {copy['busy']}"
        )
    woken = yield from ctx.call(WAKEUP, ql_chan(lock))
    copy["busy"] = woken  # NIL frees the lock; otherwise a direct handoff
    yield from ctx.call(REL, ql_loc(lock))
    return None


def qlock_unit():
    """The mini-C source of Fig. 11."""
    from ..clight.ast import (
        Assign,
        Call,
        CFunction,
        Const,
        Fld,
        If,
        Seq,
        Shared,
        TranslationUnit,
        Tup,
        Var,
        eq,
        ne,
    )

    loc = Tup([Const("ql"), Var("l")])
    chan = Tup([Const("qlock"), Var("l")])
    busy = Fld(Shared(loc), "busy")

    acq_q = CFunction(
        "acq_q",
        ["l"],
        Seq(
            [
                Call(None, ACQ, [loc]),
                Call(None, "ql_alloc", [loc]),
                If(
                    ne(busy, Const(NIL)),
                    Call(None, SLEEP, [chan, loc]),
                    Seq(
                        [
                            Call(Var("me"), "get_tid", []),
                            Assign(busy, Var("me")),
                            Call(None, REL, [loc]),
                        ]
                    ),
                ),
            ]
        ),
        doc="queuing lock acquire (Fig. 11)",
    )
    rel_q = CFunction(
        "rel_q",
        ["l"],
        Seq(
            [
                Call(None, ACQ, [loc]),
                Call(Var("w"), WAKEUP, [chan]),
                Assign(busy, Var("w")),
                Call(None, REL, [loc]),
            ]
        ),
        doc="queuing lock release (Fig. 11)",
    )
    unit = TranslationUnit("qlock")
    unit.add(acq_q)
    unit.add(rel_q)
    return unit


def ql_alloc_prim() -> Prim:
    """Materialize the ``{busy: NIL}`` block on first acquisition."""
    from ..core.interface import private_prim

    def alloc(ctx: ExecutionContext, loc):
        copies = local_copy(ctx)
        if loc not in copies:
            raise Stuck(f"ql_alloc({loc}) outside the critical section")
        if copies[loc] is None:
            copies[loc] = {"busy": NIL}
        return None

    return private_prim("ql_alloc", alloc, doc="initialize ql_busy once")


# --- replay and invariants -----------------------------------------------------------


def replay_qlock_busy(log: Log, lock: Any) -> int:
    """The current ``ql_busy`` value from the spinlock's release events.

    The protected block's value travels in the spinlock's ``rel`` events;
    the latest one gives the current busy word.
    """
    value, _holder = replay_lock(log, ql_loc(lock))
    if value == ("vundef",) or value is None:
        return NIL
    from ..core.events import thaw

    return thaw(value).get("busy", NIL)


def replay_qlock_holder(log: Log, lock: Any, cpus: CpuMap) -> int:
    """The queuing-lock holder implied by the event history.

    Folds the handoff protocol: a thread that sets busy to itself (fast
    path) holds; a ``wakeup`` handoff transfers to the woken thread; a
    busy value of NIL means free.  This is exactly
    :func:`replay_qlock_busy` — the point of the §5.4 mutual-exclusion
    argument is that the busy word *is* the holder.
    """
    return replay_qlock_busy(log, lock)


def busy_matches_holder(
    log: Log, lock: Any, critical_spans: Dict[int, List[Tuple[int, int]]]
) -> bool:
    """§5.4's invariant on one log: the busy word equals the holder.

    ``critical_spans[tid]`` are the (start, end) event indices during
    which ``tid`` was inside the qlock critical section (reported by the
    test harness players); at every index inside a span the replayed
    busy word must be ``tid``.
    """
    events = log.events
    for tid, spans in critical_spans.items():
        for start, end in spans:
            for idx in range(start, min(end, len(events))):
                prefix = Log(events[: idx + 1])
                if replay_qlock_busy(prefix, lock) != tid:
                    return False
    return True


# --- correctness via exhaustive games ---------------------------------------------------


CRIT_ENTER = "crit_enter"
CRIT_LEAVE = "crit_leave"


def qlock_worker(lock: Any, rounds: int = 1):
    """A test player: acquire, mark the critical section, release."""

    def player(ctx):
        for _ in range(rounds):
            yield from acq_q_impl(ctx, lock)
            ctx.emit(CRIT_ENTER, lock)
            ctx.emit(CRIT_LEAVE, lock)
            yield from rel_q_impl(ctx, lock)
        return "done"

    player.__name__ = f"qlock_worker_{rounds}"
    return player


def mutual_exclusion_ok(log: Log, lock: Any) -> bool:
    """No two threads are simultaneously between enter and leave, and the
    busy word equals the occupant at every enter."""
    inside: Optional[int] = None
    events = log.events
    for idx, event in enumerate(events):
        if event.name == CRIT_ENTER and event.args and event.args[0] == lock:
            if inside is not None:
                return False
            inside = event.tid
            prefix = Log(events[: idx + 1])
            if replay_qlock_busy(prefix, lock) != event.tid:
                return False
        elif event.name == CRIT_LEAVE and event.args and event.args[0] == lock:
            if inside != event.tid:
                return False
            inside = None
    return True


def check_qlock_correctness(
    cpus: CpuMap,
    init_current: Dict[int, int],
    lock: Any = 7,
    rounds: int = 1,
    fuel: int = 40_000,
    max_rounds: int = 600,
    max_choice_depth: int = 10,
    interface: Optional[LayerInterface] = None,
) -> Certificate:
    """§5.4: mutual exclusion + starvation freedom, exhaustively.

    Runs every thread of the machine through ``rounds`` qlock critical
    sections under all bounded hardware schedules over the multithreaded
    interface.  Obligations: no run gets stuck (the replay functions make
    protocol violations stick), every run completes (starvation freedom:
    every sleeper is woken and finishes), and the critical-section marks
    never overlap (mutual exclusion) with the busy word equal to the
    occupant.
    """
    from ..threads.interface import build_lhtd
    from ..threads.linking import enumerate_thread_games

    if interface is None:
        interface = build_lhtd(cpus, init_current, locks=[ql_loc(lock)])
        interface = interface.extend(interface.name, [ql_alloc_prim()])
    players = {
        tid: (qlock_worker(lock, rounds), ()) for tid in cpus.assignment
    }
    results = enumerate_thread_games(
        interface,
        players,
        cpus,
        init_current,
        fuel=fuel,
        max_rounds=max_rounds,
        max_choice_depth=max_choice_depth,
    )
    cert = Certificate(
        judgment=f"qlock({lock}) mutual exclusion ∧ starvation freedom",
        rule="qlock-correctness",
        bounds={
            "threads": len(cpus.assignment),
            "rounds": rounds,
            "schedules": len(results),
            "max_choice_depth": max_choice_depth,
        },
    )
    cert.add("at least one schedule explored", bool(results))
    for result in results:
        label = f"sched={result.schedule[:8]}..."
        cert.add(
            f"run safe [{label}]", result.stuck is None, result.stuck or ""
        )
        cert.add(
            f"run completes — starvation freedom [{label}]",
            result.finished,
            f"unfinished after {result.rounds} rounds",
        )
        cert.add(
            f"mutual exclusion [{label}]",
            mutual_exclusion_ok(result.log, lock),
        )
    cert.log_universe = tuple(r.log for r in results)
    return cert


# --- the atomic overlay ---------------------------------------------------------------


def qlock_atomic_specs(cpus: CpuMap):
    """Atomic ``acq_q``/``rel_q`` — the same shape as the spinlocks'.

    The queuing lock exports the identical atomic contract as the ticket
    and MCS locks: acquisition is one event once the lock is available,
    release is one event.  FIFO handoff shows up only in the progress
    property, not in the safety interface.
    """

    def replay_holder(log: Log, lock) -> Tuple[int, List[int]]:
        holder = NIL
        waiters: List[int] = []
        for event in log:
            if event.name == ACQ_Q and event.args and event.args[0] == lock:
                if holder == NIL:
                    holder = event.tid
                else:
                    waiters.append(event.tid)
            elif event.name == REL_Q and event.args and event.args[0] == lock:
                if event.tid != holder:
                    raise Stuck(f"{event} by non-holder (holder {holder})")
                holder = waiters.pop(0) if waiters else NIL
        return holder, waiters

    def acq_q_spec(ctx: ExecutionContext, lock):
        ctx.emit(ACQ_Q, lock)
        while True:
            ctx.consume_fuel()
            holder, _ = replay_holder(ctx.log, lock)
            if holder == ctx.tid:
                return None
            yield from ctx.query()

    def rel_q_spec(ctx: ExecutionContext, lock):
        holder, _ = replay_holder(ctx.log, lock)
        if holder != ctx.tid:
            raise Stuck(f"rel_q({lock}) by {ctx.tid}, holder {holder}")
        ctx.emit(REL_Q, lock)
        return None
        yield  # pragma: no cover

    return acq_q_spec, rel_q_spec


def qlock_atomic_interface(
    base: LayerInterface,
    cpus: CpuMap,
    name: str = "L_qlock",
    hide: Iterable[str] = (),
) -> LayerInterface:
    acq_q_spec, rel_q_spec = qlock_atomic_specs(cpus)
    return base.extend(
        name,
        [
            Prim(ACQ_Q, acq_q_spec, kind="atomic", enters_critical=True,
                 cycle_cost=0, doc="atomic queuing-lock acquire (FIFO)"),
            Prim(REL_Q, rel_q_spec, kind="atomic", exits_critical=True,
                 cycle_cost=0, doc="atomic queuing-lock release"),
        ],
        hide=hide,
    )