"""The certified thread scheduler (paper §5.1).

"Based on the shared thread queues provided by the multicore toolkit
(§4.2), we introduce a new layer interface Lbtd[c] that supports
multithreading.  At this layer interface, the transitions between threads
are done using scheduling primitives."

State (per CPU ``c``; queue ids name atomic shared-queue objects):

* ``rdq(c)`` — the private ready queue,
* ``pendq(c)`` — the shared pending queue ("containing the threads woken
  up by other CPUs"),
* ``slpq(i)`` — the shared sleeping queues,
* the current thread of each CPU — replayed from scheduling events by
  ``Rsched`` (:func:`replay_current`), exactly as the paper describes:
  "these events record the thread switches, which can be used to track
  the currently-running thread by a replay function Rsched".

Primitives (events carry the switch target, so the log determines
control):

* ``yield``  — drain ``pendq`` into ``rdq``, switch to the next ready
  thread (requeueing self at the tail); a no-op when nobody is ready.
* ``sleep(i, lk)`` — enqueue self on sleeping queue ``i``, release the
  protecting spinlock ``lk`` (Fig. 11's ``sleep(l)`` runs with the lock
  held — enqueue-then-release is what makes lost wakeups impossible),
  then switch to the next ready thread.
* ``wakeup(i)`` — dequeue one sleeper; append it to the local ready
  queue or to its home CPU's pending queue; returns the woken thread (or
  NIL).

Modelling note (recorded in DESIGN.md): the kernel context switch
(``cswitch``, saving ra/ebp/ebx/esi/edi/esp) is subsumed here by player
suspension — a blocked thread is a paused generator, and
:class:`ThreadGameScheduler` resumes exactly the replayed current thread
of each CPU.  The register-level ``cswitch`` is still implemented and
validated at the assembly layer (:mod:`repro.asm`), where stack merging
(§5.5) needs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..core.context import QUERY, ExecutionContext
from ..core.errors import Stuck
from ..core.events import DEQ, ENQ, Event, REL, SLEEP, WAKEUP, YIELD

TEXIT = "texit"
"""Thread exit: switch to the next ready thread without requeueing self.

Not in the paper's primitive list (kernel threads do not return), but
whole-machine games need finished players to cede the CPU; the exit
event keeps ``Rsched`` accurate.  A CPU whose every thread has exited
replays to current = NIL_THREAD and goes idle.
"""

NIL_THREAD = 0
from ..core.interface import LayerInterface, Prim, private_prim
from ..core.log import Log
from ..core.machine import GameScheduler
from .local_queue import NIL

# --- queue naming -------------------------------------------------------------


def rdq(cpu: int) -> Tuple[str, int]:
    return ("rdq", cpu)


def pendq(cpu: int) -> Tuple[str, int]:
    return ("pendq", cpu)


def slpq(chan: Any) -> Tuple[str, Any]:
    return ("slpq", chan)


class CpuMap:
    """The static assignment of threads to CPUs (the TCB's CPU field)."""

    def __init__(self, assignment: Dict[int, int]):
        self.assignment = dict(assignment)

    def cpu_of(self, tid: int) -> int:
        if tid not in self.assignment:
            raise Stuck(f"unknown thread {tid}")
        return self.assignment[tid]

    def threads_on(self, cpu: int) -> List[int]:
        return sorted(t for t, c in self.assignment.items() if c == cpu)

    @property
    def cpus(self) -> List[int]:
        return sorted(set(self.assignment.values()))

    def __repr__(self):
        return f"CpuMap({self.assignment})"


# --- Rsched: replaying scheduler state from the log ------------------------------


@dataclass
class SchedState:
    """The abstract scheduler state of one CPU, replayed from the log."""

    current: int
    ready: List[int] = field(default_factory=list)
    pending: List[int] = field(default_factory=list)


def replay_sched(
    log: Log, cpus: CpuMap, init_current: Dict[int, int]
) -> Dict[int, SchedState]:
    """``Rsched``: fold scheduling events into per-CPU scheduler states.

    Sleeping-queue contents are replayed separately
    (:func:`replay_slpq`).  Only the *atomic* scheduling events
    (``yield``/``sleep``/``wakeup``) participate: at the scheduler
    overlay the queue manipulations are hidden, and the scheduling events
    alone determine the state — that determinism is what makes the
    overlay a legitimate abstraction.
    """
    # Initially every spawned thread except the running one is ready.
    states = {
        cpu: SchedState(
            current=init_current[cpu],
            ready=[t for t in cpus.threads_on(cpu) if t != init_current[cpu]],
        )
        for cpu in cpus.cpus
    }
    for event in log:
        if event.name == YIELD and event.args:
            cpu = cpus.cpu_of(event.tid)
            state = states[cpu]
            target = event.args[0]
            # Drain pending into ready, exactly as the implementation does.
            state.ready.extend(state.pending)
            state.pending.clear()
            if target == event.tid:
                # Either a no-op yield (nobody ready) or an idle pickup
                # (the hardware idle loop handing the CPU to the next
                # runnable thread).
                state.current = event.tid
                if event.tid in state.ready:
                    state.ready.remove(event.tid)
            else:
                # Self requeued at the tail; target removed from ready.
                if target in state.ready:
                    state.ready.remove(target)
                state.ready.append(event.tid)
                state.current = target
        elif event.name == SLEEP and event.args:
            cpu = cpus.cpu_of(event.tid)
            state = states[cpu]
            target = event.args[1]
            state.ready.extend(state.pending)
            state.pending.clear()
            if target in state.ready:
                state.ready.remove(target)
            state.current = target
        elif event.name == TEXIT and event.args:
            cpu = cpus.cpu_of(event.tid)
            state = states[cpu]
            target = event.args[0]
            state.ready.extend(state.pending)
            state.pending.clear()
            if target in state.ready:
                state.ready.remove(target)
            state.current = target  # NIL_THREAD when the CPU goes idle
        elif event.name == WAKEUP and event.args:
            woken = event.args[1]
            if woken != NIL:
                home = cpus.cpu_of(woken)
                here = cpus.cpu_of(event.tid)
                if home == here:
                    states[home].ready.append(woken)
                else:
                    states[home].pending.append(woken)
    return states


def replay_current(
    log: Log, cpu: int, cpus: CpuMap, init_current: Dict[int, int]
) -> int:
    return replay_sched(log, cpus, init_current)[cpu].current


def idle_next(state: SchedState) -> int:
    """The thread the idle loop would hand an idle CPU to (NIL if none)."""
    queue = state.ready + state.pending
    return queue[0] if queue else NIL_THREAD


def replay_slpq(log: Log, chan: Any) -> List[int]:
    """The sleeping queue contents from atomic scheduling events."""
    sleepers: List[int] = []
    for event in log:
        if event.name == SLEEP and event.args and event.args[0] == chan:
            sleepers.append(event.tid)
        elif event.name == WAKEUP and event.args and event.args[0] == chan:
            woken = event.args[1]
            if woken != NIL and woken in sleepers:
                sleepers.remove(woken)
    return sleepers


# --- the implementation over the atomic queue (+ lock) layer -----------------------


def make_sched_impls(cpus: CpuMap, init_current: Dict[int, int]):
    """Build the scheduler module's players over the queue layer.

    Returns ``(yield_impl, sleep_impl, wakeup_impl, block_until_current)``.
    The implementations run their queue manipulations in critical state
    (the scheduler lock held through the switch), so the queue events and
    the scheduling event appear atomically in the log.
    """

    def block_until_current(ctx: ExecutionContext):
        cpu = cpus.cpu_of(ctx.tid)
        while True:
            ctx.consume_fuel()
            yield QUERY
            state = replay_sched(ctx.log, cpus, init_current)[cpu]
            if state.current == ctx.tid:
                return
            if state.current == NIL_THREAD and idle_next(state) == ctx.tid:
                # Idle pickup: the CPU's idle loop drains the pending
                # queue and hands control to the next runnable thread —
                # which is us.  At this layer the queue traffic is real.
                ctx.enter_critical()
                yield from drain_pending(ctx)
                nxt = yield from ctx.call(DEQ, rdq(cpu))
                if nxt != ctx.tid:
                    raise Stuck(
                        f"idle pickup raced: expected {ctx.tid}, got {nxt}"
                    )
                ctx.emit(YIELD, ctx.tid)
                ctx.exit_critical()
                return

    def drain_pending(ctx: ExecutionContext):
        cpu = cpus.cpu_of(ctx.tid)
        while True:
            ctx.consume_fuel()
            nid = yield from ctx.call(DEQ, pendq(cpu))
            if nid == NIL:
                return
            yield from ctx.call(ENQ, rdq(cpu), nid)

    def yield_impl(ctx: ExecutionContext):
        cpu = cpus.cpu_of(ctx.tid)
        yield from ctx.query()
        ctx.enter_critical()
        yield from drain_pending(ctx)
        nxt = yield from ctx.call(DEQ, rdq(cpu))
        if nxt == NIL:
            # Nobody else is ready: yield is a no-op (recorded for Rsched).
            ctx.emit(YIELD, ctx.tid)
            ctx.exit_critical()
            return None
        yield from ctx.call(ENQ, rdq(cpu), ctx.tid)
        ctx.emit(YIELD, nxt)
        ctx.exit_critical()
        yield from block_until_current(ctx)
        return None

    def sleep_impl(ctx: ExecutionContext, chan, lock=None):
        cpu = cpus.cpu_of(ctx.tid)
        yield from ctx.query()
        ctx.enter_critical()
        yield from ctx.call(ENQ, slpq(chan), ctx.tid)
        if lock is not None:
            # Fig. 11: sleep(l) is entered with the protecting spinlock
            # held; the scheduler releases it after self-enqueueing, which
            # closes the lost-wakeup window.
            yield from ctx.call(REL, lock)
        yield from drain_pending(ctx)
        nxt = yield from ctx.call(DEQ, rdq(cpu))
        # With no ready thread the CPU goes idle (nxt == NIL); the idle
        # pickup in block_until_current resumes whoever is woken first.
        ctx.emit(SLEEP, chan, nxt if nxt != NIL else NIL_THREAD)
        ctx.exit_critical()
        yield from block_until_current(ctx)
        return None

    def texit_impl(ctx: ExecutionContext):
        cpu = cpus.cpu_of(ctx.tid)
        yield from ctx.query()
        ctx.enter_critical()
        yield from drain_pending(ctx)
        nxt = yield from ctx.call(DEQ, rdq(cpu))
        ctx.emit(TEXIT, nxt if nxt != NIL else NIL_THREAD)
        ctx.exit_critical()
        return None

    def wakeup_impl(ctx: ExecutionContext, chan):
        cpu = cpus.cpu_of(ctx.tid)
        yield from ctx.query()
        ctx.enter_critical()
        nid = yield from ctx.call(DEQ, slpq(chan))
        if nid != NIL:
            home = cpus.cpu_of(nid)
            if home == cpu:
                yield from ctx.call(ENQ, rdq(cpu), nid)
            else:
                yield from ctx.call(ENQ, pendq(home), nid)
        ctx.emit(WAKEUP, chan, nid)
        ctx.exit_critical()
        return nid

    return {
        YIELD: yield_impl,
        SLEEP: sleep_impl,
        WAKEUP: wakeup_impl,
        TEXIT: texit_impl,
        "block": block_until_current,
    }


# --- the atomic overlay (Lhtd-style scheduling primitives) --------------------------


def make_sched_atomic_specs(cpus: CpuMap, init_current: Dict[int, int]):
    """Atomic scheduling primitives: one event per call, queues hidden.

    The specifications compute the switch target from the *replayed*
    abstract scheduler state — the implementation's queue traffic has
    been abstracted away entirely.
    """

    def block(ctx: ExecutionContext):
        cpu = cpus.cpu_of(ctx.tid)
        while True:
            ctx.consume_fuel()
            yield QUERY
            state = replay_sched(ctx.log, cpus, init_current)[cpu]
            if state.current == ctx.tid:
                return
            if state.current == NIL_THREAD and idle_next(state) == ctx.tid:
                # Idle pickup, one atomic event at this layer.
                ctx.emit(YIELD, ctx.tid)
                return

    def yield_spec(ctx: ExecutionContext):
        yield from ctx.query()
        cpu = cpus.cpu_of(ctx.tid)
        state = replay_sched(ctx.log, cpus, init_current)[cpu]
        ready = state.ready + state.pending
        nxt = ready[0] if ready else ctx.tid
        ctx.emit(YIELD, nxt)
        if nxt != ctx.tid:
            yield from block(ctx)
        return None

    def sleep_spec(ctx: ExecutionContext, chan, lock=None):
        yield from ctx.query()
        cpu = cpus.cpu_of(ctx.tid)
        if lock is not None:
            yield from ctx.call(REL, lock)
        state = replay_sched(ctx.log, cpus, init_current)[cpu]
        ready = state.ready + state.pending
        # Idle the CPU when nobody is ready (NIL_THREAD target).
        ctx.emit(SLEEP, chan, ready[0] if ready else NIL_THREAD)
        yield from block(ctx)
        return None

    def wakeup_spec(ctx: ExecutionContext, chan):
        yield from ctx.query()
        sleepers = replay_slpq(ctx.log, chan)
        nid = sleepers[0] if sleepers else NIL
        ctx.emit(WAKEUP, chan, nid)
        return nid

    def texit_spec(ctx: ExecutionContext):
        yield from ctx.query()
        cpu = cpus.cpu_of(ctx.tid)
        state = replay_sched(ctx.log, cpus, init_current)[cpu]
        ready = state.ready + state.pending
        ctx.emit(TEXIT, ready[0] if ready else NIL_THREAD)
        return None

    return {
        YIELD: yield_spec,
        SLEEP: sleep_spec,
        WAKEUP: wakeup_spec,
        TEXIT: texit_spec,
    }


def sched_interface(
    base: LayerInterface,
    cpus: CpuMap,
    init_current: Dict[int, int],
    name: str = "Lhtd",
    hide: Iterable[str] = (),
    atomic: bool = True,
) -> LayerInterface:
    """Extend a layer with scheduling primitives.

    ``atomic=True`` installs the atomic overlay specifications (the
    ``Lhtd[c]`` interface); ``atomic=False`` installs the queue-level
    implementations as primitives (the ``Lbtd[c]`` interface — used to
    run whole-machine games below the abstraction and for the Thm 5.1
    linking check).
    """
    if atomic:
        specs = make_sched_atomic_specs(cpus, init_current)
    else:
        specs = make_sched_impls(cpus, init_current)

    def yield_prim_spec(ctx):
        ret = yield from specs[YIELD](ctx)
        return ret

    def sleep_prim_spec(ctx, chan, lock=None):
        ret = yield from specs[SLEEP](ctx, chan, lock)
        return ret

    def wakeup_prim_spec(ctx, chan):
        ret = yield from specs[WAKEUP](ctx, chan)
        return ret

    def texit_prim_spec(ctx):
        ret = yield from specs[TEXIT](ctx)
        return ret

    prims = [
        Prim(YIELD, yield_prim_spec, cycle_cost=2,
             doc="switch to the next ready thread"),
        Prim(SLEEP, sleep_prim_spec, cycle_cost=2,
             doc="block on a sleeping queue, releasing the given lock"),
        Prim(WAKEUP, wakeup_prim_spec, cycle_cost=2,
             doc="wake one sleeper (to ready or pending queue)"),
        Prim(TEXIT, texit_prim_spec, cycle_cost=2,
             doc="thread exit: cede the CPU without requeueing"),
        private_prim("get_tid", lambda ctx: ctx.tid, doc="current thread id"),
    ]
    return base.extend(name, prims, hide=hide)


# --- the game scheduler respecting Rsched ----------------------------------------------


class ThreadGameScheduler(GameScheduler):
    """A whole-machine scheduler that honours the software scheduler.

    The hardware may pick any CPU at each round (driven by the wrapped
    ``cpu_picker`` decision sequence), but within a CPU only the
    *replayed current thread* may run — resuming a blocked generator
    would violate the machine semantics.  Threads that are finished are
    skipped; if a CPU's current thread is finished the CPU is idle.
    """

    def __init__(
        self,
        cpus: CpuMap,
        init_current: Dict[int, int],
        cpu_script: Sequence[int] = (),
    ):
        self.cpus = cpus
        self.init_current = dict(init_current)
        self.cpu_script = tuple(cpu_script)
        self.cursor = 0

    def pick(self, log: Log, ready: FrozenSet[int]) -> int:
        states = replay_sched(log, self.cpus, self.init_current)
        runnable = {}
        for cpu, state in states.items():
            if state.current in ready:
                runnable[cpu] = state.current
            elif state.current == NIL_THREAD:
                # Idle CPU: resume the next runnable thread so its block
                # loop can perform the idle pickup.
                candidate = idle_next(state)
                if candidate in ready:
                    runnable[cpu] = candidate
        if not runnable:
            # Every current thread has finished: allow any ready thread
            # whose turn could come (deadlocked games end by round bound).
            return min(ready)
        order = sorted(runnable)
        if self.cursor < len(self.cpu_script):
            wanted = self.cpu_script[self.cursor]
            self.cursor += 1
            if wanted in runnable:
                return runnable[wanted]
        # Round-robin over CPUs by round counter.
        cpu = order[self.cursor % len(order)]
        self.cursor += 1
        return runnable[cpu]

    def fresh(self) -> "ThreadGameScheduler":
        return ThreadGameScheduler(self.cpus, self.init_current, self.cpu_script)
