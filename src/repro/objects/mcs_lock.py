"""The certified MCS lock (paper §6, Table 2; Kim et al. APLAS'17).

The MCS list-based queue lock [Mellor-Crummey & Scott 1991] is the second
lock the paper certifies; crucially it implements *the same* atomic
interface ``L_lock`` as the ticket lock: "Both ticket and MCS locks share
the same high-level atomic specifications (or strategies) ... Thus the
lock implementations can be freely interchanged without affecting any
proof in the higher-level modules using locks" (§6).

Representation: per lock ``b``,

* ``tail(b)`` — an atomic cell holding the queue tail: 0 for nil, or
  ``tid + 1`` for the node of participant ``tid``;
* ``next(b, t)`` — participant ``t``'s successor pointer (same encoding);
* ``busy(b, t)`` — participant ``t``'s spin flag (1 = must wait).

Acquire swaps itself into the tail; if there was a predecessor it links
behind it and spins on its own ``busy`` flag.  Release either CASes the
tail back to nil (no successor) or hands the lock to the successor by
clearing its ``busy`` flag.  ``pull``/``push`` of the protected data mark
the critical-section boundaries exactly as for the ticket lock, so the
log-lift relation has the same shape: ``acq ↦ pull``, ``rel ↦ push``,
MCS machinery erased.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.context import ExecutionContext
from ..core.errors import Stuck
from ..core.events import ACQ, Event, PULL, PUSH, REL, freeze, thaw
from ..core.interface import LayerInterface, Prim, SHARED
from ..core.log import Log
from ..core.machint import IntWidth
from ..core.relation import EventMapRel
from ..core.rely_guarantee import Guarantee, LogInvariant, Rely
from ..core.replay import replay_shared
from ..machine.atomics import ALOAD, ASTORE, CAS, SWAP, replay_atomic
from ..machine.sharedmem import local_copy
from .ticket_lock import (
    acq_atomic_spec,
    atomic_env_alphabet,
    lock_atomic_interface,
    rel_atomic_spec,
    replay_consistent_inv,
)

NIL = 0


def tail_cell(lock: Any) -> Tuple[str, Any]:
    return ("mcs_tail", lock)


def next_cell(lock: Any, tid: int) -> Tuple[str, Any, int]:
    return ("mcs_next", lock, tid)


def busy_cell(lock: Any, tid: int) -> Tuple[str, Any, int]:
    return ("mcs_busy", lock, tid)


def node_id(tid: int) -> int:
    """Encode a participant's queue node as a non-nil integer."""
    return tid + 1


def node_tid(nid: int) -> int:
    return nid - 1


# --- replay: the MCS queue from the log --------------------------------------


def replay_mcs_queue(log: Log, lock: Any) -> List[int]:
    """The FIFO queue of participants waiting on / holding ``lock``.

    Folds ``swap``/``cas``/hand-off events: joining the queue is the
    ``swap`` on the tail; leaving is either a successful tail CAS back to
    nil or the predecessor clearing our ``busy`` flag.  The head of the
    returned list is the current MCS owner.
    """
    queue: List[int] = []
    tc = tail_cell(lock)
    for event in log:
        if event.name == SWAP and event.args and event.args[0] == tc:
            queue.append(event.tid)
        elif event.name == CAS and event.args and event.args[0] == tc:
            _, old, new = event.args
            if new == NIL and queue == [event.tid] and old == node_id(event.tid):
                queue.pop()
        elif (
            event.name == ASTORE
            and event.args
            and isinstance(event.args[0], tuple)
            and event.args[0][:1] == ("mcs_busy",)
            and event.args[0][1] == lock
            and len(event.args) > 1
            and event.args[1] == 0
        ):
            # The holder hands off to its successor.
            if queue and queue[0] == event.tid:
                queue.pop(0)
    return queue


# --- M_mcs: the implementation (players over Lx86) -----------------------------


def mcs_acq_impl(ctx: ExecutionContext, lock):
    """MCS acquire: join the queue, spin on the private busy flag, pull."""
    me = node_id(ctx.tid)
    yield from ctx.call(ASTORE, next_cell(lock, ctx.tid), NIL)
    yield from ctx.call(ASTORE, busy_cell(lock, ctx.tid), 1)
    pred = yield from ctx.call(SWAP, tail_cell(lock), me)
    if pred != NIL:
        yield from ctx.call(ASTORE, next_cell(lock, node_tid(pred)), me)
        while True:
            ctx.consume_fuel()
            busy = yield from ctx.call(ALOAD, busy_cell(lock, ctx.tid))
            if busy == 0:
                break
    yield from ctx.call(PULL, lock)
    return None


def mcs_rel_impl(ctx: ExecutionContext, lock):
    """MCS release: push, then hand off (or CAS the tail back to nil)."""
    me = node_id(ctx.tid)
    yield from ctx.call(PUSH, lock)
    nxt = yield from ctx.call(ALOAD, next_cell(lock, ctx.tid))
    if nxt == NIL:
        done = yield from ctx.call(CAS, tail_cell(lock), me, NIL)
        if done:
            return None
        while True:
            ctx.consume_fuel()
            nxt = yield from ctx.call(ALOAD, next_cell(lock, ctx.tid))
            if nxt != NIL:
                break
    yield from ctx.call(ASTORE, busy_cell(lock, node_tid(nxt)), 0)
    return None


def mcs_lock_unit():
    """The mini-C source of the MCS lock."""
    from ..clight.ast import (
        Binop,
        Break,
        Call,
        CFunction,
        Const,
        If,
        Return,
        Seq,
        TranslationUnit,
        Tup,
        Var,
        While,
        eq,
        ne,
    )

    tail = Tup([Const("mcs_tail"), Var("b")])

    def nxt(owner):
        return Tup([Const("mcs_next"), Var("b"), owner])

    def busy(owner):
        return Tup([Const("mcs_busy"), Var("b"), owner])

    acq = CFunction(
        "acq",
        ["b"],
        Seq(
            [
                Call(Var("me"), "get_nid", []),
                Call(Var("mytid"), "get_tid", []),
                Call(None, ASTORE, [nxt(Var("mytid")), Const(NIL)]),
                Call(None, ASTORE, [busy(Var("mytid")), Const(1)]),
                Call(Var("pred"), SWAP, [tail, Var("me")]),
                If(
                    ne(Var("pred"), Const(NIL)),
                    Seq(
                        [
                            # pred - 1 decodes the node id back to a tid.
                            Call(
                                None,
                                ASTORE,
                                [
                                    nxt(Binop("-", Var("pred"), Const(1))),
                                    Var("me"),
                                ],
                            ),
                            While(
                                Const(1),
                                Seq(
                                    [
                                        Call(Var("w"), ALOAD, [busy(Var("mytid"))]),
                                        If(eq(Var("w"), Const(0)), Break()),
                                    ]
                                ),
                            ),
                        ]
                    ),
                ),
                Call(None, PULL, [Var("b")]),
            ]
        ),
        doc="MCS lock acquire",
    )
    rel = CFunction(
        "rel",
        ["b"],
        Seq(
            [
                Call(Var("me"), "get_nid", []),
                Call(Var("mytid"), "get_tid", []),
                Call(None, PUSH, [Var("b")]),
                Call(Var("nxt"), ALOAD, [nxt(Var("mytid"))]),
                If(
                    eq(Var("nxt"), Const(NIL)),
                    Seq(
                        [
                            Call(Var("done"), CAS, [tail, Var("me"), Const(NIL)]),
                            If(ne(Var("done"), Const(0)), Return()),
                            While(
                                Const(1),
                                Seq(
                                    [
                                        Call(Var("nxt"), ALOAD, [nxt(Var("mytid"))]),
                                        If(ne(Var("nxt"), Const(NIL)), Break()),
                                    ]
                                ),
                            ),
                        ]
                    ),
                ),
                Call(
                    None,
                    ASTORE,
                    [busy(Binop("-", Var("nxt"), Const(1))), Const(0)],
                ),
            ]
        ),
        doc="MCS lock release",
    )
    unit = TranslationUnit("mcs_lock")
    unit.add(acq)
    unit.add(rel)
    return unit


def tid_prims() -> Tuple[Prim, ...]:
    """Private primitives exposing the participant's id and node id.

    Kernel code obtains the current CPU/thread id through a private
    primitive (``CurID`` in Fig. 1); the MCS code needs both the id and
    its node encoding.
    """
    from ..core.interface import private_prim

    return (
        private_prim("get_tid", lambda ctx: ctx.tid, doc="current participant id"),
        private_prim("get_nid", lambda ctx: node_id(ctx.tid), doc="own MCS node id"),
    )


# --- low-level strategies (φ'_acq / φ'_rel for MCS) ---------------------------


def mcs_acq_low_spec(ctx: ExecutionContext, lock):
    """The fun-lift strategy: identical event structure to the C code."""
    me = node_id(ctx.tid)
    yield from ctx.query()
    ctx.emit(ASTORE, next_cell(lock, ctx.tid), NIL)
    yield from ctx.query()
    ctx.emit(ASTORE, busy_cell(lock, ctx.tid), 1)
    yield from ctx.query()
    pred = replay_atomic(ctx.log, tail_cell(lock))
    ctx.emit(SWAP, tail_cell(lock), me, ret=pred)
    if pred != NIL:
        yield from ctx.query()
        ctx.emit(ASTORE, next_cell(lock, node_tid(pred)), me)
        while True:
            ctx.consume_fuel()
            yield from ctx.query()
            busy = replay_atomic(ctx.log, busy_cell(lock, ctx.tid))
            ctx.emit(ALOAD, busy_cell(lock, ctx.tid), ret=busy)
            if busy == 0:
                break
    yield from ctx.query()
    cell = replay_shared(ctx.log, lock)
    if not cell.status.is_free:
        raise Stuck(f"φ'_mcs_acq: pull({lock}) while {cell.status}")
    ctx.emit(PULL, lock)
    local_copy(ctx)[lock] = None if cell.value == ("vundef",) else thaw(cell.value)
    return None


def mcs_rel_low_spec(ctx: ExecutionContext, lock):
    me = node_id(ctx.tid)
    copies = local_copy(ctx)
    if lock not in copies:
        raise Stuck(f"φ'_mcs_rel: rel({lock}) without a pulled copy")
    cell = replay_shared(ctx.log, lock)
    if cell.status.owner != ctx.tid:
        raise Stuck(f"φ'_mcs_rel: push({lock}) while {cell.status}")
    ctx.emit(PUSH, lock, freeze(copies.pop(lock)))
    ctx.exit_critical()
    yield from ctx.query()
    nxt = replay_atomic(ctx.log, next_cell(lock, ctx.tid))
    ctx.emit(ALOAD, next_cell(lock, ctx.tid), ret=nxt)
    if nxt == NIL:
        yield from ctx.query()
        tail = replay_atomic(ctx.log, tail_cell(lock))
        done = tail == me
        ctx.emit(CAS, tail_cell(lock), me, NIL, ret=done)
        if done:
            return None
        while True:
            ctx.consume_fuel()
            yield from ctx.query()
            nxt = replay_atomic(ctx.log, next_cell(lock, ctx.tid))
            ctx.emit(ALOAD, next_cell(lock, ctx.tid), ret=nxt)
            if nxt != NIL:
                break
    yield from ctx.query()
    ctx.emit(ASTORE, busy_cell(lock, node_tid(nxt)), 0)
    return None


def mcs_low_interface(
    base: LayerInterface,
    name: str = "L_mcs_low",
    hide: Iterable[str] = (),
) -> LayerInterface:
    return base.extend(
        name,
        [
            Prim(ACQ, mcs_acq_low_spec, kind=SHARED,
                 enters_critical=True, cycle_cost=0,
                 doc="φ'_acq: MCS acquire (low-level strategy)"),
            Prim(REL, mcs_rel_low_spec, kind=SHARED, cycle_cost=0,
                 doc="φ'_rel: MCS release (low-level strategy)"),
        ],
        hide=hide,
    )


# --- log-lift relation ----------------------------------------------------------


def mcs_relation() -> EventMapRel:
    """``R_mcs``: ``acq ↦ pull``, ``rel ↦ push``, MCS machinery erased.

    Concretization expands an environment's atomic round trip into a full
    quiescent-state MCS trace (join empty queue, enter, leave by tail
    CAS); witness batches are delivered at quiescent points only, where
    this trace is replay-consistent.
    """

    def conc_acq(event: Event) -> Tuple[Event, ...]:
        lock = event.args[0]
        tid = event.tid
        return (
            Event(tid, ASTORE, (next_cell(lock, tid), NIL)),
            Event(tid, ASTORE, (busy_cell(lock, tid), 1)),
            Event(tid, SWAP, (tail_cell(lock), node_id(tid))),
            Event(tid, PULL, (lock,)),
        )

    def conc_rel(event: Event) -> Tuple[Event, ...]:
        lock = event.args[0]
        tid = event.tid
        value = event.args[1] if len(event.args) > 1 else ("vundef",)
        return (
            Event(tid, PUSH, (lock, value)),
            Event(tid, CAS, (tail_cell(lock), node_id(tid), NIL)),
        )

    def map_acq(event: Event) -> Tuple[Event, ...]:
        return (Event(event.tid, PULL, (event.args[0],), None),)

    def map_rel(event: Event) -> Tuple[Event, ...]:
        lock = event.args[0]
        value = event.args[1] if len(event.args) > 1 else ("vundef",)
        return (Event(event.tid, PUSH, (lock, value), None),)

    return EventMapRel(
        "R_mcs",
        mapping={ACQ: map_acq, REL: map_rel},
        erase={SWAP, CAS, ALOAD, ASTORE},
        concretize={ACQ: conc_acq, REL: conc_rel},
    )


# --- rely ---------------------------------------------------------------------


def mcs_protocol_inv(locks: Sequence[Any]) -> LogInvariant:
    """The MCS queue discipline as a log invariant.

    ``pull`` is only legal for the queue head; tail CAS to nil only for a
    sole holder; busy hand-off only from the head to its successor.
    """

    def check(log: Log) -> bool:
        for lock in locks:
            queue: List[int] = []
            tc = tail_cell(lock)
            for event in log:
                if event.name == SWAP and event.args and event.args[0] == tc:
                    queue.append(event.tid)
                elif event.name == CAS and event.args and event.args[0] == tc:
                    _, old, new = event.args
                    if new == NIL:
                        if old != node_id(event.tid):
                            return False
                        if queue == [event.tid]:
                            queue.pop()
                        # A failed CAS (queue longer) is legal.
                elif (
                    event.name == ASTORE
                    and event.args
                    and isinstance(event.args[0], tuple)
                    and event.args[0][:1] == ("mcs_busy",)
                    and event.args[0][1] == lock
                    and len(event.args) > 1
                    and event.args[1] == 0
                ):
                    if not queue or queue[0] != event.tid:
                        return False
                    queue.pop(0)
                elif event.name == PULL and event.args and event.args[0] == lock:
                    if not queue or queue[0] != event.tid:
                        return False
        return True

    return LogInvariant(f"mcs_protocol{list(locks)}", check)


def mcs_rely(
    domain: Iterable[int],
    locks: Sequence[Any],
    release_bound: int = 6,
    fairness_bound: int = 8,
) -> Rely:
    inv = replay_consistent_inv(locks) & mcs_protocol_inv(locks)
    return Rely(
        {tid: inv for tid in domain},
        fairness_bound=fairness_bound,
        release_bound=release_bound,
    )


def mcs_guarantee(domain: Iterable[int], locks: Sequence[Any]) -> Guarantee:
    inv = replay_consistent_inv(locks) & mcs_protocol_inv(locks)
    return Guarantee({tid: inv for tid in domain})


def low_mcs_env_alphabet(
    env_tids: Iterable[int],
    locks: Sequence[Any],
    values: Sequence[Any] = (("env", 0),),
) -> List[Tuple[Event, ...]]:
    """Low-level environment batches: quiescent full MCS round trips."""
    batches: List[Tuple[Event, ...]] = [()]
    for tid in env_tids:
        for lock in locks:
            for value in values:
                batches.append(
                    (
                        Event(tid, ASTORE, (next_cell(lock, tid), NIL)),
                        Event(tid, ASTORE, (busy_cell(lock, tid), 1)),
                        Event(tid, SWAP, (tail_cell(lock), node_id(tid))),
                        Event(tid, PULL, (lock,)),
                        Event(tid, PUSH, (lock, freeze(value))),
                        Event(tid, CAS, (tail_cell(lock), node_id(tid), NIL)),
                    )
                )
    return batches


# --- the full derivation ----------------------------------------------------------


def certify_mcs_lock(
    domain: Sequence[int],
    lock: Any = "L",
    env_depth: int = 2,
    fuel: int = 3_000,
    focused: Optional[Sequence[int]] = None,
    use_c_source: bool = True,
):
    """Fig. 5 for the MCS lock: same shape, same atomic overlay.

    Returns a :class:`~repro.objects.ticket_lock.CertifiedLockStack`.
    """
    from ..clight.semantics import c_func_impl
    from ..core.calculus import interface_sim_rule, module_rule, pcomp_all, weaken
    from ..core.module import FuncImpl, Module
    from ..core.relation import ID_REL
    from ..core.simulation import SimConfig
    from ..machine.cpu_local import lx86_interface
    from .ticket_lock import CertifiedLockStack, lock_scenarios

    focused = list(focused if focused is not None else domain)
    rely = mcs_rely(domain, [lock])
    guar = mcs_guarantee(domain, [lock])
    base = lx86_interface(domain, rely=rely, guar=guar, extra_prims=tid_prims())
    low = mcs_low_interface(base)
    atomic = lock_atomic_interface(
        base,
        hide=["fai", "aload", "astore", "cas", "swap", "pull", "push",
              "get_tid", "get_nid"],
    )

    if use_c_source:
        unit = mcs_lock_unit()
        module = Module(
            {
                ACQ: c_func_impl(unit, ACQ),
                REL: c_func_impl(unit, REL),
            },
            name="M_mcs",
        )
    else:
        module = Module(
            {
                ACQ: FuncImpl(ACQ, mcs_acq_impl, lang="spec"),
                REL: FuncImpl(REL, mcs_rel_impl, lang="spec"),
            },
            name="M_mcs",
        )

    relation = mcs_relation()
    fun_lift: Dict[int, Any] = {}
    log_lift: Dict[int, Any] = {}
    layer: Dict[int, Any] = {}
    for tid in focused:
        env_tids = [t for t in domain if t != tid]
        low_cfg = SimConfig(
            env_alphabet=low_mcs_env_alphabet(env_tids, [lock]),
            env_depth=env_depth,
            fuel=fuel,
            delivery="per_query",
        )
        at_cfg = SimConfig(
            env_alphabet=atomic_env_alphabet(env_tids, [lock]),
            env_depth=env_depth,
            fuel=fuel,
        )
        fun_lift[tid] = module_rule(
            base, module, low, ID_REL, tid, lock_scenarios(lock, low_cfg)
        )
        log_lift[tid] = interface_sim_rule(
            low, atomic, relation, tid, lock_scenarios(lock, at_cfg)
        )
        layer[tid] = weaken(fun_lift[tid], post=log_lift[tid])

    composed = layer[focused[0]]
    if len(focused) > 1:
        composed = pcomp_all([layer[tid] for tid in focused])

    return CertifiedLockStack(
        base=base,
        low=low,
        atomic=atomic,
        module=module,
        fun_lift=fun_lift,
        log_lift=log_lift,
        layer=layer,
        composed=composed,
    )
