"""The certified shared queue object (paper §4.2).

"To implement the atomic queue object, we simply wrap the local queue
operations with lock acquire and release statements."  The module built
here sits on top of the *atomic* lock interface ``L_lock`` — exactly the
layering the paper advertises: no lock implementation detail (tickets,
MCS nodes) is visible, and either certified lock slots underneath.

* **Implementation** (mini-C, over ``L_lock`` + the local queue body)::

      uint deQ(uint q) {              void enQ(uint q, uint nid) {
          acq(q);                         acq(q);
          q_alloc(q);                     q_alloc(q);
          uint r = deQ_t(q);              enQ_t(q, nid);
          rel(q);                         rel(q);
          return r;                   }
      }

* **Atomic overlay** ``L_q_high``: one ``deQ(q) ↓ r`` / ``enQ(q, nid)``
  event per call; the queue contents are replayed from those events
  (:func:`replay_shared_queue`).

* **Relation** :class:`QueueRel` — the paper's ``Rlock`` for queues:
  "merges two queue-related lock events (c.acq and c.rel) into a single
  event c.deQ at the higher layer."  The relation is *stateful*: the
  expected release value for each high-level event depends on the queue
  contents at that point, so relating walks both logs in step and
  compares through the representation abstraction
  (:func:`~repro.objects.local_queue.linked_to_list`); concretization of
  environment events computes the released value from the low-level log
  at delivery time.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.context import ExecutionContext
from ..core.errors import Stuck
from ..core.events import ACQ, DEQ, ENQ, Event, PULL, PUSH, REL, freeze, thaw
from ..core.interface import LayerInterface, Prim, private_prim
from ..core.log import Log
from ..core.relation import SimRel
from ..core.rely_guarantee import Guarantee, LogInvariant, Rely
from ..machine.sharedmem import local_copy
from .local_queue import NIL, linked_deq, linked_enq, linked_to_list, new_queue
from .ticket_lock import replay_lock

DEFAULT_CAPACITY = 8


# --- replay of the atomic queue interface ---------------------------------------


def replay_shared_queue(log: Log, queue: Any) -> List[int]:
    """The queue contents from ``enQ``/``deQ`` events (the high layer)."""
    contents: List[int] = []
    for event in log:
        if event.name == ENQ and event.args and event.args[0] == queue:
            contents.append(event.args[1])
        elif event.name == DEQ and event.args and event.args[0] == queue:
            if contents:
                expected = contents.pop(0)
                if event.ret is not None and event.ret != expected:
                    raise Stuck(
                        f"forged log: {event} but head was {expected}"
                    )
            elif event.ret not in (None, NIL):
                raise Stuck(f"forged log: {event} on empty queue")
    return contents


# --- the implementation over L_lock ------------------------------------------------


def q_alloc_prim(capacity: int = DEFAULT_CAPACITY) -> Prim:
    """Private primitive: materialize an empty queue on first acquisition.

    The first ``acq`` of a block pulls ``vundef``; the kernel's static
    initialization is modelled by allocating the empty structure inside
    the first critical section.
    """

    def alloc(ctx: ExecutionContext, queue):
        copies = local_copy(ctx)
        if queue not in copies:
            raise Stuck(f"q_alloc({queue}) outside the critical section")
        if copies[queue] is None:
            copies[queue] = new_queue(capacity)
        return None

    return private_prim("q_alloc", alloc, doc="initialize queue storage once")


def deq_impl(ctx: ExecutionContext, queue):
    """``deQ``: acq; deQ_t on the pulled copy; rel (Python twin)."""
    yield from ctx.call(ACQ, queue)
    yield from ctx.call("q_alloc", queue)
    value = local_copy(ctx)[queue]
    nid = linked_deq(value)
    yield from ctx.call(REL, queue)
    return nid


def enq_impl(ctx: ExecutionContext, queue, nid):
    """``enQ``: acq; enQ_t on the pulled copy; rel (Python twin)."""
    yield from ctx.call(ACQ, queue)
    yield from ctx.call("q_alloc", queue)
    value = local_copy(ctx)[queue]
    linked_enq(value, nid)
    yield from ctx.call(REL, queue)
    return None


def shared_queue_unit():
    """The mini-C source: lock-wrapped queue operations.

    Reuses the local queue body (:mod:`repro.objects.local_queue`)
    operating on the pulled shared block — the Table 2 reuse story.
    """
    from ..clight.ast import (
        Call,
        CFunction,
        Return,
        Seq,
        Shared as SharedExpr,
        TranslationUnit,
        Var,
    )
    from .local_queue import queue_functions

    unit = TranslationUnit("shared_queue")
    for fn in queue_functions(lambda: SharedExpr(Var("q"))):
        unit.add(fn)
    unit.add(
        CFunction(
            "deQ",
            ["q"],
            Seq(
                [
                    Call(None, ACQ, [Var("q")]),
                    Call(None, "q_alloc", [Var("q")]),
                    Call(Var("r"), "deQ_t", [Var("q")]),
                    Call(None, REL, [Var("q")]),
                    Return(Var("r")),
                ]
            ),
            doc="atomic dequeue: lock-wrapped deQ_t (§4.2)",
        )
    )
    unit.add(
        CFunction(
            "enQ",
            ["q", "nid"],
            Seq(
                [
                    Call(None, ACQ, [Var("q")]),
                    Call(None, "q_alloc", [Var("q")]),
                    Call(None, "enQ_t", [Var("q"), Var("nid")]),
                    Call(None, REL, [Var("q")]),
                ]
            ),
            doc="atomic enqueue: lock-wrapped enQ_t (§4.2)",
        )
    )
    return unit


# --- the atomic overlay --------------------------------------------------------------


def deq_atomic_spec(ctx: ExecutionContext, queue):
    """``φ_deQ``: one atomic event, return value from the replayed queue."""
    yield from ctx.query()
    contents = replay_shared_queue(ctx.log, queue)
    nid = contents[0] if contents else NIL
    ctx.emit(DEQ, queue, ret=nid)
    return nid


def enq_atomic_spec(ctx: ExecutionContext, queue, nid):
    """``φ_enQ``: one atomic event.

    Precondition (kernel invariant): a node id is in at most one queue
    position — TCBs link through in-object prev/next fields, so double
    enqueue corrupts the pool.  The specification is partial there.
    """
    yield from ctx.query()
    if nid in replay_shared_queue(ctx.log, queue):
        raise Stuck(f"enQ({queue}, {nid}): node already enqueued")
    ctx.emit(ENQ, queue, nid)
    return None


def queue_atomic_interface(
    base: LayerInterface,
    name: str = "L_q_high",
    hide: Iterable[str] = (),
) -> LayerInterface:
    """The atomic shared-queue interface (overlay of the log-lift)."""
    return base.extend(
        name,
        [
            Prim(DEQ, deq_atomic_spec, kind="atomic", cycle_cost=0,
                 doc="atomic dequeue"),
            Prim(ENQ, enq_atomic_spec, kind="atomic", cycle_cost=0,
                 doc="atomic enqueue"),
        ],
        hide=hide,
    )


# --- the stateful relation ---------------------------------------------------------


class QueueRel(SimRel):
    """``R_q``: merge ``acq``/``rel`` around a queue op into one event.

    Relating is stateful: walking the high log maintains the abstract
    queue; each ``enQ``/``deQ`` event must correspond to a low-level
    ``acq(q)``-``rel(q, v)`` pair whose released value ``v`` abstracts
    (via :func:`linked_to_list`) to the updated queue.  Events unrelated
    to the queues pass through unchanged.
    """

    def __init__(self, queues: Sequence[Any], name: str = "R_q"):
        self.name = name
        self.queues = set(queues)

    # -- relating ------------------------------------------------------------

    def relate_logs(self, log_low: Log, log_high: Log) -> bool:
        try:
            expected = self._expected_sync_points(log_high)
            actual = self._actual_sync_points(log_low)
        except (Stuck, ValueError):
            return False
        return expected == actual

    def _expected_sync_points(self, log_high: Log) -> List[Tuple]:
        state: Dict[Any, List[int]] = {q: [] for q in self.queues}
        points: List[Tuple] = []
        for event in log_high:
            if event.is_sched():
                continue
            if event.name == ENQ and event.args and event.args[0] in self.queues:
                queue = event.args[0]
                state[queue] = state[queue] + [event.args[1]]
                points.append((event.tid, queue, tuple(state[queue])))
            elif event.name == DEQ and event.args and event.args[0] in self.queues:
                queue = event.args[0]
                if state[queue]:
                    state[queue] = state[queue][1:]
                points.append((event.tid, queue, tuple(state[queue])))
            else:
                points.append(("passthrough", event))
        return points

    def _actual_sync_points(self, log_low: Log) -> List[Tuple]:
        points: List[Tuple] = []
        pending: Dict[Tuple[int, Any], bool] = {}
        for event in log_low:
            if event.is_sched():
                continue
            if event.name == ACQ and event.args and event.args[0] in self.queues:
                pending[(event.tid, event.args[0])] = True
            elif event.name == REL and event.args and event.args[0] in self.queues:
                queue = event.args[0]
                if not pending.pop((event.tid, queue), None):
                    raise Stuck(f"{event} without matching acq")
                value = thaw(event.args[1]) if len(event.args) > 1 else None
                abstract = (
                    tuple(linked_to_list(value)) if value is not None else ()
                )
                points.append((event.tid, queue, abstract))
            else:
                points.append(("passthrough", event))
        return points

    # -- concretization (log-aware) ----------------------------------------------

    def concretize_batch(self, batch, log: Log):
        """Lower environment queue events against the current low log."""
        out: List[Event] = []
        # Track values released *within this batch* so consecutive env
        # events see each other's effects.
        staged: Dict[Any, Any] = {}
        for event in batch:
            if event.name in (ENQ, DEQ) and event.args and event.args[0] in self.queues:
                queue = event.args[0]
                if queue in staged:
                    value = staged[queue]
                else:
                    raw = replay_lock(log, queue)[0]
                    value = (
                        new_queue(DEFAULT_CAPACITY)
                        if raw == ("vundef",)
                        else thaw(raw)
                    )
                    if value is None:
                        value = new_queue(DEFAULT_CAPACITY)
                if event.name == ENQ:
                    linked_enq(value, event.args[1])
                else:
                    linked_deq(value)
                staged[queue] = value
                out.append(Event(event.tid, ACQ, (queue,)))
                out.append(Event(event.tid, REL, (queue, freeze(value))))
            else:
                out.append(event)
        return tuple(out)

    def relate_ret(self, ret_low: Any, ret_high: Any) -> bool:
        return ret_low == ret_high


# --- rely / alphabets ------------------------------------------------------------------


def queue_wellformed_inv(queues: Sequence[Any]) -> LogInvariant:
    """Rely: queue events keep every node in at most one position.

    Environment behaviours that double-enqueue a node (or forge a dequeue
    return) make the high-level replay stuck and are excluded from the
    valid environment contexts.
    """

    def check(log: Log) -> bool:
        for queue in queues:
            try:
                contents = replay_shared_queue(log, queue)
            except Stuck:
                return False
            if len(contents) != len(set(contents)):
                return False
            # Also reject enqueues of already-present nodes.
            state: List[int] = []
            for event in log:
                if event.name == ENQ and event.args and event.args[0] == queue:
                    if event.args[1] in state:
                        return False
                    state.append(event.args[1])
                elif event.name == DEQ and event.args and event.args[0] == queue:
                    if state:
                        state.pop(0)
        return True

    return LogInvariant(f"queue_wellformed{list(queues)}", check)


def queue_env_alphabet(
    env_tids: Iterable[int],
    queues: Sequence[Any],
    nids: Sequence[int] = (7,),
) -> List[Tuple[Event, ...]]:
    """High-level environment batches: atomic enQ/deQ by other CPUs.

    Environment node ids should be disjoint from the ids the checked
    scenarios use (a node lives in one queue position at a time).
    """
    batches: List[Tuple[Event, ...]] = [()]
    for tid in env_tids:
        for queue in queues:
            batches.append((Event(tid, DEQ, (queue,)),))
            for nid in nids:
                batches.append((Event(tid, ENQ, (queue, nid)),))
    return batches


def queue_scenarios(queue: Any, config, nid: int = 1) -> List:
    """Protocol scenarios for the shared-queue module."""
    from ..core.simulation import Scenario

    return [
        Scenario("deq_empty", [(DEQ, (queue,))], config),
        Scenario("enq", [(ENQ, (queue, nid))], config),
        Scenario("enq_deq", [(ENQ, (queue, nid)), (DEQ, (queue,))], config),
        Scenario(
            "enq_enq_deq_deq",
            [
                (ENQ, (queue, nid)),
                (ENQ, (queue, nid + 1)),
                (DEQ, (queue,)),
                (DEQ, (queue,)),
            ],
            config,
        ),
    ]


def certify_shared_queue(
    domain: Sequence[int],
    queue: Any = "rdq",
    env_depth: int = 2,
    fuel: int = 4_000,
    focused: Optional[Sequence[int]] = None,
    use_c_source: bool = True,
    capacity: int = DEFAULT_CAPACITY,
):
    """Certify the shared queue over the atomic lock interface.

    Builds: ``L_lock`` (+ ``q_alloc``) ⊢ ``M_q`` : ``L_q_high`` by the
    generalized ``Fun`` rule, per focused participant, then ``Pcomp``.
    The underlay is the *atomic* lock layer — the output of
    :func:`~repro.objects.ticket_lock.certify_ticket_lock` — so the full
    stack composes by ``Vcomp``.
    """
    from ..clight.semantics import c_func_impl
    from ..core.calculus import module_rule, pcomp_all
    from ..core.module import FuncImpl, Module
    from ..core.simulation import SimConfig
    from ..machine.cpu_local import lx86_interface
    from .ticket_lock import (
        lock_atomic_interface,
        lock_guarantee,
        lock_rely,
        replay_consistent_inv,
    )

    focused = list(focused if focused is not None else domain)
    rely = lock_rely(domain, [queue])
    guar = lock_guarantee(domain, [queue])
    base = lx86_interface(domain, rely=rely, guar=guar)
    lock_layer = lock_atomic_interface(
        base,
        name="L_lock+q",
        hide=["fai", "aload", "astore", "cas", "swap", "pull", "push"],
    ).extend("L_lock+q", [q_alloc_prim(capacity)])
    overlay = queue_atomic_interface(lock_layer, hide=[ACQ, REL, "q_alloc"])
    wellformed = queue_wellformed_inv([queue])
    overlay = overlay.with_rely(
        Rely(
            {tid: rely.condition(tid) & wellformed for tid in domain},
            fairness_bound=rely.fairness_bound,
            release_bound=rely.release_bound,
        )
    )

    if use_c_source:
        unit = shared_queue_unit()
        module = Module(
            {
                DEQ: c_func_impl(unit, DEQ),
                ENQ: c_func_impl(unit, ENQ),
            },
            name="M_q",
        )
    else:
        module = Module(
            {
                DEQ: FuncImpl(DEQ, deq_impl, lang="spec"),
                ENQ: FuncImpl(ENQ, enq_impl, lang="spec"),
            },
            name="M_q",
        )

    relation = QueueRel([queue])
    layers: Dict[int, Any] = {}
    for tid in focused:
        env_tids = [t for t in domain if t != tid]
        config = SimConfig(
            env_alphabet=queue_env_alphabet(env_tids, [queue]),
            env_depth=env_depth,
            fuel=fuel,
        )
        layers[tid] = module_rule(
            lock_layer,
            module,
            overlay,
            relation,
            tid,
            queue_scenarios(queue, config),
        )

    composed = layers[focused[0]]
    if len(focused) > 1:
        composed = pcomp_all([layers[tid] for tid in focused])
    return {
        "base": base,
        "lock_layer": lock_layer,
        "overlay": overlay,
        "module": module,
        "layers": layers,
        "composed": composed,
        "relation": relation,
    }
