"""The local (sequential) queue library (paper §4.2, Table 2).

Queues are "implemented as doubly linked lists" over a node pool — the
CertiKOS style, where thread queues link TCB-array entries by index
rather than by pointer (the kernel has no allocator).  Node ids run from
1 to ``capacity``; 0 is NIL.  A queue value is a dict::

    {"head": nid, "tail": nid, "prev": [...], "next": [...]}

with ``prev``/``next`` indexed by node id.

The same mini-C code operates on any *place* — a private global array
element for the local layer, the pulled copy of a shared block for the
shared layer (``queue_functions`` is parameterized by the place builder).
This is the reuse the paper reports in Table 2: "we also reuse the
implementation and proof of the local (or sequential) queue library"
when building the shared queue.

The abstract specification of a queue is simply a Python list of node
ids; :func:`linked_to_list` is the representation abstraction relating
the two, and the data-refinement obligations (every operation commutes
with the abstraction) are what the sequential layer check discharges —
"the queue is represented as a logical list in the specification, while
it is implemented as a doubly linked list" (§6).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..clight.ast import (
    Arr,
    Assert,
    Assign,
    Binop,
    Call,
    CFunction,
    Const,
    Expr,
    Fld,
    Glob,
    If,
    Return,
    Seq,
    Shared,
    Skip,
    TranslationUnit,
    Var,
    While,
    eq,
    ne,
)

NIL = 0


def new_queue(capacity: int) -> Dict[str, Any]:
    """A fresh empty queue over a node pool of the given capacity."""
    return {
        "head": NIL,
        "tail": NIL,
        "prev": [NIL] * (capacity + 1),
        "next": [NIL] * (capacity + 1),
    }


def linked_to_list(queue: Dict[str, Any]) -> List[int]:
    """The representation abstraction: linked structure → logical list.

    Walks the next-chain from the head; raises ``ValueError`` on a
    malformed structure (cycle or broken back-links), which is how the
    data-refinement tests detect representation-invariant violations.
    """
    out: List[int] = []
    seen = set()
    nid = queue["head"]
    prev = NIL
    while nid != NIL:
        if nid in seen:
            raise ValueError(f"cycle in queue at node {nid}")
        seen.add(nid)
        if queue["prev"][nid] != prev:
            raise ValueError(
                f"broken back-link at node {nid}: prev={queue['prev'][nid]}, "
                f"expected {prev}"
            )
        out.append(nid)
        prev = nid
        nid = queue["next"][nid]
    if queue["tail"] != (out[-1] if out else NIL):
        raise ValueError(f"tail {queue['tail']} does not match walk {out}")
    return out


# --- the Python model (specification) ------------------------------------------


def model_enq(queue: List[int], nid: int) -> List[int]:
    return queue + [nid]


def model_deq(queue: List[int]) -> tuple:
    if not queue:
        return NIL, queue
    return queue[0], queue[1:]


def model_rmv(queue: List[int], nid: int) -> List[int]:
    return [n for n in queue if n != nid]


# --- the mini-C implementation ---------------------------------------------------


def queue_functions(place: Callable[[], Expr], suffix: str = "") -> List[CFunction]:
    """The doubly-linked-list queue operations over an arbitrary place.

    ``place()`` builds the expression for the queue struct (the functions
    take the queue identifier as parameter ``q``; the place builder may
    reference it).  Returns ``enQ_t``, ``deQ_t``, ``rmv_t`` and
    ``inQ_t`` — the ``_t`` suffix marks the lock-free "trusted critical
    section" forms of §4.2 (``deQ_t`` "performs the actual dequeue
    operation over a local copy, under the assumption that the
    corresponding lock is held").
    """
    Q = place

    def head():
        return Fld(Q(), "head")

    def tail():
        return Fld(Q(), "tail")

    def nxt(of):
        return Arr(Fld(Q(), "next"), of)

    def prv(of):
        return Arr(Fld(Q(), "prev"), of)

    enq = CFunction(
        f"enQ_t{suffix}",
        ["q", "nid"],
        Seq(
            [
                If(
                    eq(tail(), Const(NIL)),
                    Assign(head(), Var("nid")),
                    Seq(
                        [
                            Assign(nxt(tail()), Var("nid")),
                            Assign(prv(Var("nid")), tail()),
                        ]
                    ),
                ),
                Assign(nxt(Var("nid")), Const(NIL)),
                Assign(tail(), Var("nid")),
            ]
        ),
        doc="append a node at the tail (critical-section body)",
    )

    deq = CFunction(
        f"deQ_t{suffix}",
        ["q"],
        Seq(
            [
                Assign(Var("nid"), head()),
                If(
                    ne(Var("nid"), Const(NIL)),
                    Seq(
                        [
                            Assign(head(), nxt(Var("nid"))),
                            If(
                                eq(head(), Const(NIL)),
                                Assign(tail(), Const(NIL)),
                                Assign(prv(head()), Const(NIL)),
                            ),
                            Assign(nxt(Var("nid")), Const(NIL)),
                            Assign(prv(Var("nid")), Const(NIL)),
                        ]
                    ),
                ),
                Return(Var("nid")),
            ]
        ),
        doc="remove and return the head node, NIL when empty",
    )

    rmv = CFunction(
        f"rmv_t{suffix}",
        ["q", "nid"],
        Seq(
            [
                If(
                    eq(head(), Var("nid")),
                    # Removing the head is a dequeue of this node.
                    Seq(
                        [
                            Assign(head(), nxt(Var("nid"))),
                            If(
                                eq(head(), Const(NIL)),
                                Assign(tail(), Const(NIL)),
                                Assign(prv(head()), Const(NIL)),
                            ),
                        ]
                    ),
                    If(
                        eq(tail(), Var("nid")),
                        Seq(
                            [
                                Assign(tail(), prv(Var("nid"))),
                                Assign(nxt(tail()), Const(NIL)),
                            ]
                        ),
                        # Interior node: splice prev/next together.
                        Seq(
                            [
                                Assign(nxt(prv(Var("nid"))), nxt(Var("nid"))),
                                Assign(prv(nxt(Var("nid"))), prv(Var("nid"))),
                            ]
                        ),
                    ),
                ),
                Assign(nxt(Var("nid")), Const(NIL)),
                Assign(prv(Var("nid")), Const(NIL)),
            ]
        ),
        doc="unlink a node from anywhere in the queue (used by wakeup)",
    )

    inq = CFunction(
        f"inQ_t{suffix}",
        ["q", "nid"],
        Seq(
            [
                Assign(Var("cur"), head()),
                Assign(Var("found"), Const(0)),
                While(
                    ne(Var("cur"), Const(NIL)),
                    Seq(
                        [
                            If(eq(Var("cur"), Var("nid")), Assign(Var("found"), Const(1))),
                            Assign(Var("cur"), nxt(Var("cur"))),
                        ]
                    ),
                ),
                Return(Var("found")),
            ]
        ),
        doc="membership test (walks the next-chain)",
    )
    return [enq, deq, rmv, inq]


def local_queue_unit(capacity: int = 8, num_queues: int = 4) -> TranslationUnit:
    """The sequential queue library over a private global queue array.

    ``tdqp`` — the thread-queue pool (the paper's abstract ``a.tdqp``) —
    is a CPU-private global: a dict from queue index to queue struct.
    """
    unit = TranslationUnit("local_queue")
    unit.globals["tdqp"] = lambda: {
        q: new_queue(capacity) for q in range(num_queues)
    }
    for fn in queue_functions(lambda: Arr(Glob("tdqp"), Var("q"))):
        unit.add(fn)
    return unit


def shared_queue_body_unit() -> TranslationUnit:
    """The same queue code operating on a pulled shared block.

    Reused verbatim by the shared-queue module (§4.2): the only
    difference is the place the code operates on.
    """
    unit = TranslationUnit("shared_queue_body")
    for fn in queue_functions(lambda: Shared(Var("q"))):
        unit.add(fn)
    return unit


# --- reference interpreter-level implementations (for property tests) -----------


def linked_enq(queue: Dict[str, Any], nid: int) -> None:
    """Direct Python transliteration of ``enQ_t`` (differential testing)."""
    if queue["tail"] == NIL:
        queue["head"] = nid
    else:
        queue["next"][queue["tail"]] = nid
        queue["prev"][nid] = queue["tail"]
    queue["next"][nid] = NIL
    queue["tail"] = nid


def linked_deq(queue: Dict[str, Any]) -> int:
    nid = queue["head"]
    if nid != NIL:
        queue["head"] = queue["next"][nid]
        if queue["head"] == NIL:
            queue["tail"] = NIL
        else:
            queue["prev"][queue["head"]] = NIL
        queue["next"][nid] = NIL
        queue["prev"][nid] = NIL
    return nid


def linked_rmv(queue: Dict[str, Any], nid: int) -> None:
    if queue["head"] == nid:
        queue["head"] = queue["next"][nid]
        if queue["head"] == NIL:
            queue["tail"] = NIL
        else:
            queue["prev"][queue["head"]] = NIL
    elif queue["tail"] == nid:
        queue["tail"] = queue["prev"][nid]
        queue["next"][queue["tail"]] = NIL
    elif queue["prev"][nid] != NIL or queue["next"][nid] != NIL:
        queue["next"][queue["prev"][nid]] = queue["next"][nid]
        queue["prev"][queue["next"][nid]] = queue["prev"][nid]
    queue["next"][nid] = NIL
    queue["prev"][nid] = NIL
