"""The certified ticket lock (paper §2, §4.1, Fig. 3, Fig. 10).

The stack built here is the paper's running example:

* **Bottom** — ``Lx86[c]``: atomic cells (``fai``/``aload``) for the two
  lock fields ``t`` (next ticket) and ``n`` (now serving), plus
  ``pull``/``push`` for the protected shared data.

* **Implementation** ``M1`` (Fig. 10)::

      void acq(uint b) {            void rel(uint b) {
          uint myt = ▷FAI_t(b);         push(b);
          while (▷get_n(b) != myt);     ▷inc_n(b);
          ▷pull(b);                 }
      }

* **Fun-lift** to ``L_lock_low[c]`` — the low-level strategies
  ``φ'_acq``/``φ'_rel`` with the same event structure (relation ``id``).

* **Log-lift** to ``L_lock[c]`` — the atomic interface: one ``acq(b)``
  event (entering critical state) and one ``rel(b, v)`` event.  The
  simulation relation maps ``acq ↦ pull`` and ``rel ↦ push`` (ownership
  transfer is the linearization point) and erases the ticket machinery
  (``fai``/``aload``); its concretization produces the full low-level
  witness traces so environment behaviours stay replay-consistent.

Overflow: the ticket fields wrap at the machine width.  Mutual exclusion
survives because "as long as the total number of CPUs in the machine is
less than 2^32, the mutual exclusion property will not be violated even
with overflows" (§4.1) — :func:`replay_ticket` tracks both the unbounded
specification counters and their wrapped machine values, and the
property tests in ``tests/objects`` drive the width down until wraparound
actually happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.context import ExecutionContext
from ..core.errors import Stuck
from ..core.events import ACQ, Event, PULL, PUSH, REL, freeze, thaw
from ..core.interface import LayerInterface, Prim, SHARED, shared_prim
from ..core.log import Log
from ..core.machint import UINT32, IntWidth
from ..core.relation import EventMapRel
from ..core.rely_guarantee import Guarantee, LogInvariant, Rely
from ..core.replay import ReplayFn, replay_shared
from ..machine.atomics import ALOAD, FAI, replay_atomic
from ..machine.sharedmem import local_copy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..clight.ast import TranslationUnit

# --- lock field cells -------------------------------------------------------


def t_cell(lock: Any) -> Tuple[str, Any]:
    """The atomic cell holding the lock's next-ticket counter ``t``."""
    return ("ticket_t", lock)


def n_cell(lock: Any) -> Tuple[str, Any]:
    """The atomic cell holding the lock's now-serving counter ``n``."""
    return ("ticket_n", lock)


# --- replay functions --------------------------------------------------------


@dataclass(frozen=True)
class TicketState:
    """Replayed ticket-lock state: unbounded and wrapped counters.

    ``now_serving``/``next_ticket`` are the unbounded specification
    counters; ``now_wrapped``/``next_wrapped`` their machine-width
    images.  ``holder`` is the participant currently inside the critical
    section (determined by ownership of the protected location).
    """

    now_serving: int
    next_ticket: int
    now_wrapped: int
    next_wrapped: int

    @property
    def free(self) -> bool:
        return self.now_serving == self.next_ticket


def replay_ticket(log: Log, lock: Any, width_bits: int = 32) -> TicketState:
    """``Rticket`` (§4.1): count ``FAI`` events on the two lock cells."""
    next_ticket = 0
    now_serving = 0
    tc, nc = t_cell(lock), n_cell(lock)
    for event in log:
        if event.name == FAI and event.args:
            if event.args[0] == tc:
                next_ticket += 1
            elif event.args[0] == nc:
                now_serving += 1
    width = IntWidth(width_bits)
    return TicketState(
        now_serving=now_serving,
        next_ticket=next_ticket,
        now_wrapped=width.wrap(now_serving),
        next_wrapped=width.wrap(next_ticket),
    )


def _lock_init(lock) -> Tuple[Any, Optional[int]]:
    return (("vundef",), None)


def _lock_step(state, event: Event, lock):
    value, holder = state
    if event.name == ACQ and event.args and event.args[0] == lock:
        if holder is not None:
            raise Stuck(
                f"mutual exclusion violated: {event.tid}.acq({lock}) while "
                f"held by {holder}"
            )
        return (value, event.tid)
    if event.name == REL and event.args and event.args[0] == lock:
        if holder != event.tid:
            raise Stuck(
                f"{event.tid}.rel({lock}) without holding (holder={holder})"
            )
        return (event.args[1] if len(event.args) > 1 else value, None)
    return state


replay_lock = ReplayFn("Rlock", _lock_init, _lock_step)
"""Replay of the *atomic* lock interface: ``(value, holder)`` from
``acq``/``rel`` events.  Raises on mutual-exclusion violations, so any
game over the atomic interface that completes is ME-consistent."""


def lock_holder(log: Log, lock: Any) -> Optional[int]:
    return replay_lock(log, lock)[1]


# --- M1: the implementation (players over Lx86) ------------------------------


def acq_impl(ctx: ExecutionContext, lock):
    """Fig. 10 ``acq``: fetch a ticket, spin on ``n``, pull the data."""
    my_t = yield from ctx.call(FAI, t_cell(lock))
    while True:
        ctx.consume_fuel()
        now = yield from ctx.call(ALOAD, n_cell(lock))
        if now == my_t:
            break
    value = yield from ctx.call(PULL, lock)
    return None


def rel_impl(ctx: ExecutionContext, lock):
    """Fig. 10 ``rel``: push the data, increment now-serving."""
    yield from ctx.call(PUSH, lock)
    yield from ctx.call(FAI, n_cell(lock))
    return None


# --- L_lock_low: the low-level strategies (φ'_acq, φ'_rel) -------------------


def make_acq_low_spec(width_bits: int = 32):
    """``φ'_acq``: the §2 automaton — still exposes the spin loop."""

    def acq_low_spec(ctx: ExecutionContext, lock):
        yield from ctx.query()
        state = replay_ticket(ctx.log, lock, width_bits)
        my_t = state.next_wrapped
        ctx.emit(FAI, t_cell(lock), ret=my_t)
        while True:
            ctx.consume_fuel()
            yield from ctx.query()
            state = replay_ticket(ctx.log, lock, width_bits)
            ctx.emit(ALOAD, n_cell(lock), ret=state.now_wrapped)
            if state.now_wrapped == my_t:
                break
        # The pull has its own query point (matching σpull, Fig. 8).
        yield from ctx.query()
        cell = replay_shared(ctx.log, lock)
        if not cell.status.is_free:
            raise Stuck(
                f"φ'_acq: pull({lock}) while {cell.status} — ticket "
                f"discipline violated by the environment"
            )
        ctx.emit(PULL, lock)
        value = None if cell.value == ("vundef",) else thaw(cell.value)
        local_copy(ctx)[lock] = value
        return None

    return acq_low_spec


def make_rel_low_spec(width_bits: int = 32):
    """``φ'_rel``: push the local copy, then increment ``n``."""

    def rel_low_spec(ctx: ExecutionContext, lock):
        copies = local_copy(ctx)
        if lock not in copies:
            raise Stuck(f"φ'_rel: rel({lock}) without a pulled copy")
        cell = replay_shared(ctx.log, lock)
        if cell.status.owner != ctx.tid:
            raise Stuck(f"φ'_rel: push({lock}) while {cell.status}")
        value = freeze(copies.pop(lock))
        ctx.emit(PUSH, lock, value)
        # The release increment happens outside the data critical section
        # (Fig. 10: push(b); ▷inc_n(b)), so the environment may be queried
        # between the two events.
        ctx.exit_critical()
        yield from ctx.query()
        state = replay_ticket(ctx.log, lock, width_bits)
        ctx.emit(FAI, n_cell(lock), ret=state.now_wrapped)
        return None

    return rel_low_spec


def lock_low_interface(
    base: LayerInterface,
    width_bits: int = 32,
    name: str = "L_lock_low",
    hide: Iterable[str] = (),
) -> LayerInterface:
    """The fun-lift overlay: ``acq``/``rel`` as low-level strategies."""
    return base.extend(
        name,
        [
            Prim(ACQ, make_acq_low_spec(width_bits), kind=SHARED,
                 enters_critical=True, cycle_cost=0,
                 doc="φ'_acq: ticket spin-lock acquire (low-level strategy)"),
            Prim(REL, make_rel_low_spec(width_bits), kind=SHARED,
                 cycle_cost=0,
                 doc="φ'_rel: ticket spin-lock release (low-level strategy)"),
        ],
        hide=hide,
    )


# --- L_lock: the atomic interface --------------------------------------------


def acq_atomic_spec(ctx: ExecutionContext, lock):
    """``φ_acq``: query E until the lock is free, then one ``acq`` event.

    Produces exactly one event and enters the critical state; the query
    loop absorbs environment events (the environment's rely condition
    guarantees release within a bound, so the loop terminates — this is
    the full specification of a *starvation-free* lock the paper
    emphasizes, enabling vertical composition of liveness).
    """
    while True:
        ctx.consume_fuel()
        yield from ctx.query()
        value, holder = replay_lock(ctx.log, lock)
        if holder is None:
            break
    ctx.emit(ACQ, lock)
    local_copy(ctx)[lock] = None if value == ("vundef",) else thaw(value)
    return None


def rel_atomic_spec(ctx: ExecutionContext, lock):
    """``φ_rel``: one ``rel(b, v)`` event carrying the published value."""
    copies = local_copy(ctx)
    if lock not in copies:
        raise Stuck(f"φ_rel: rel({lock}) without holding")
    _, holder = replay_lock(ctx.log, lock)
    if holder != ctx.tid:
        raise Stuck(f"φ_rel: rel({lock}) by non-holder (holder={holder})")
    value = freeze(copies.pop(lock))
    ctx.emit(REL, lock, value)
    return None
    yield  # pragma: no cover


def lock_atomic_interface(
    base: LayerInterface,
    name: str = "L_lock",
    hide: Iterable[str] = (),
) -> LayerInterface:
    """The log-lift overlay: atomic, starvation-free ``acq``/``rel``.

    Both the ticket lock and the MCS lock implement *this same*
    interface — "the lock implementations can be freely interchanged
    without affecting any proof in the higher-level modules" (§6).
    """
    return base.extend(
        name,
        [
            Prim(ACQ, acq_atomic_spec, kind="atomic",
                 enters_critical=True, cycle_cost=0,
                 doc="atomic lock acquire; loads the protected value"),
            Prim(REL, rel_atomic_spec, kind="atomic",
                 exits_critical=True, cycle_cost=0,
                 doc="atomic lock release; publishes the protected value"),
        ],
        hide=hide,
    )


# --- the log-lift simulation relation ----------------------------------------


def lock_relation(width_bits: int = 32) -> EventMapRel:
    """``R_lock``: relate low-level ticket traces to atomic lock events.

    * ``acq(b) ↦ pull(b)`` — the linearization point of a successful
      acquire is taking ownership of the protected data;
    * ``rel(b, v) ↦ push(b, v)`` — release linearizes at publication;
    * ``fai``/``aload`` are erased (ticket machinery noise).

    Concretization expands environment events to full low-level witness
    traces so the low-level replay functions stay consistent:
    ``acq(b) ↦ fai(t) • pull(b)`` and ``rel(b,v) ↦ push(b,v) • fai(n)``.
    """

    def conc_acq(event: Event) -> Tuple[Event, ...]:
        lock = event.args[0]
        return (
            Event(event.tid, FAI, (t_cell(lock),), None),
            Event(event.tid, PULL, (lock,), None),
        )

    def conc_rel(event: Event) -> Tuple[Event, ...]:
        lock = event.args[0]
        value = event.args[1] if len(event.args) > 1 else ("vundef",)
        return (
            Event(event.tid, PUSH, (lock, value), None),
            Event(event.tid, FAI, (n_cell(lock),), None),
        )

    def map_acq(event: Event) -> Tuple[Event, ...]:
        return (Event(event.tid, PULL, (event.args[0],), None),)

    def map_rel(event: Event) -> Tuple[Event, ...]:
        lock = event.args[0]
        value = event.args[1] if len(event.args) > 1 else ("vundef",)
        return (Event(event.tid, PUSH, (lock, value), None),)

    return EventMapRel(
        "R_lock",
        mapping={ACQ: map_acq, REL: map_rel},
        erase={FAI, ALOAD},
        concretize={ACQ: conc_acq, REL: conc_rel},
    )


# --- rely conditions -----------------------------------------------------------


def replay_consistent_inv(locks: Sequence[Any], width_bits: int = 32) -> LogInvariant:
    """The log replays without getting stuck for every given lock.

    This is the executable form of "lock-related events generated by φj
    must follow φ'acq[j] and φ'rel[j]" (§2): an environment whose events
    break the ticket/ownership discipline produces a replay-stuck prefix.
    """

    def check(log: Log) -> bool:
        for lock in locks:
            try:
                replay_shared(log, lock)
                replay_lock(log, lock)
            except Stuck:
                return False
        return True

    # Prefix-closed: replay processes events in order and raises Stuck at
    # the first offending one, which any extension still contains.
    return LogInvariant(
        f"replay_consistent{list(locks)}", check, prefix_closed=True
    )


def ticket_protocol_inv(locks: Sequence[Any]) -> LogInvariant:
    """The ticket discipline: serve strictly in ticket order.

    Folding the log per lock: every ``fai(t)`` assigns the next ticket to
    its issuer; ``pull(b)`` is only legal for the participant whose
    ticket is now serving; ``fai(n)`` (the release increment) is only
    legal for the currently served participant.  This is the rely
    condition ``L'1[i].Rj`` of §2 — environment events "must follow
    φacq'[j] and φrel'[j]" — in executable form; without it an
    environment could jump the queue and starve the focused spinner.
    """

    def check(log: Log) -> bool:
        for lock in locks:
            tc, nc = t_cell(lock), n_cell(lock)
            tickets: List[int] = []
            served = 0
            for event in log:
                if event.name == FAI and event.args:
                    if event.args[0] == tc:
                        tickets.append(event.tid)
                    elif event.args[0] == nc:
                        if served >= len(tickets) or tickets[served] != event.tid:
                            return False
                        served += 1
                elif event.name == PULL and event.args and event.args[0] == lock:
                    if served >= len(tickets) or tickets[served] != event.tid:
                        return False
        return True

    # Prefix-closed: the fold fails at the first out-of-order ticket
    # event, and later events never legalize an earlier violation.
    return LogInvariant(
        f"ticket_protocol{list(locks)}", check, prefix_closed=True
    )


def lock_rely(
    domain: Iterable[int],
    locks: Sequence[Any],
    release_bound: int = 4,
    fairness_bound: int = 8,
    width_bits: int = 32,
) -> Rely:
    """The rely condition of the lock layers.

    Every participant's events must keep the log replay-consistent and
    follow the ticket discipline; the scheduler is fair within
    ``fairness_bound``; held locks are released within ``release_bound``
    own-steps (the *definite action* that makes the atomic acquire's
    wait loop terminate).
    """
    inv = replay_consistent_inv(locks, width_bits) & ticket_protocol_inv(locks)
    return Rely(
        {tid: inv for tid in domain},
        fairness_bound=fairness_bound,
        release_bound=release_bound,
    )


#: The complete event vocabulary of the certified lock stacks: machine
#: atomics, push/pull memory events, and the atomic lock actions.  Used
#: as the declared guarantee event set of the ticket-lock derivation
#: (rely/guarantee lint REPRO-I203 checks every statically reachable
#: emit site against it).
LOCK_EVENTS = frozenset(
    {FAI, ALOAD, "astore", "cas", "swap", PULL, PUSH, ACQ, REL}
)


def lock_guarantee(
    domain: Iterable[int],
    locks: Sequence[Any],
    events: Optional[Iterable[str]] = None,
) -> Guarantee:
    """The guarantee: focused participants also keep replay consistency.

    ``events`` optionally declares the closed event-name set the focused
    participants may emit (see :data:`LOCK_EVENTS`); callers whose
    stacks add further events (the shared queue) leave it undeclared.
    """
    inv = replay_consistent_inv(locks)
    return Guarantee({tid: inv for tid in domain}, events=events)


# --- environment alphabets for the simulation checks ---------------------------


def atomic_env_alphabet(
    env_tids: Iterable[int],
    locks: Sequence[Any],
    values: Sequence[Any] = (("env", 0),),
) -> List[Tuple[Event, ...]]:
    """High-level environment batches for the lock checks.

    Each batch is guarantee-complete: an environment participant that
    acquires also releases within the batch (the atomic layer never
    observes a foreign critical section that does not finish — justified
    by the starvation-freedom of the certified lock; see DESIGN.md §4).
    """
    batches: List[Tuple[Event, ...]] = [()]
    for tid in env_tids:
        for lock in locks:
            for value in values:
                batches.append(
                    (
                        Event(tid, ACQ, (lock,)),
                        Event(tid, REL, (lock, freeze(value))),
                    )
                )
    return batches


def ticket_lock_unit() -> "TranslationUnit":
    """The Fig. 10 C source of the ticket lock, as a mini-C unit.

    ::

        void acq(uint b) {              void rel(uint b) {
            uint myt = ▷fai(&t[b]);         push(b);
            while (1) {                     ▷fai(&n[b]);
                uint now = ▷aload(&n[b]);
                if (now == myt) break;  }
            }
            ▷pull(b);
        }
    """
    from ..clight.ast import (
        Break,
        Call,
        CFunction,
        Const,
        If,
        Seq,
        TranslationUnit,
        Tup,
        Var,
        While,
        eq,
    )

    t_addr = Tup([Const("ticket_t"), Var("b")])
    n_addr = Tup([Const("ticket_n"), Var("b")])
    acq = CFunction(
        "acq",
        ["b"],
        Seq(
            [
                Call(Var("myt"), FAI, [t_addr]),
                While(
                    Const(1),
                    Seq(
                        [
                            Call(Var("now"), ALOAD, [n_addr]),
                            If(eq(Var("now"), Var("myt")), Break()),
                        ]
                    ),
                ),
                Call(None, PULL, [Var("b")]),
            ]
        ),
        doc="ticket lock acquire (Fig. 10)",
    )
    rel = CFunction(
        "rel",
        ["b"],
        Seq(
            [
                Call(None, PUSH, [Var("b")]),
                Call(None, FAI, [n_addr]),
            ]
        ),
        doc="ticket lock release (Fig. 10)",
    )
    unit = TranslationUnit("ticket_lock")
    unit.add(acq)
    unit.add(rel)
    return unit


def low_env_alphabet(
    env_tids: Iterable[int],
    locks: Sequence[Any],
    values: Sequence[Any] = (("env", 0),),
) -> List[Tuple[Event, ...]]:
    """Low-level environment batches: full ticket round-trips."""
    batches: List[Tuple[Event, ...]] = [()]
    for tid in env_tids:
        for lock in locks:
            for value in values:
                batches.append(
                    (
                        Event(tid, FAI, (t_cell(lock),)),
                        Event(tid, PULL, (lock,)),
                        Event(tid, PUSH, (lock, freeze(value))),
                        Event(tid, FAI, (n_cell(lock),)),
                    )
                )
    return batches


# --- the full Fig. 5 derivation ----------------------------------------------


@dataclass
class CertifiedLockStack:
    """All artifacts of the ticket-lock derivation (Fig. 5).

    * ``fun_lift[t]`` — ``Lx86[t] ⊢_id M1 : L_lock_low[t]`` per participant
    * ``log_lift[t]`` — ``L_lock_low[t] ≤_{R_lock} L_lock[t]``
    * ``layer[t]`` — ``Lx86[t] ⊢_{R_lock} M1 : L_lock[t]`` (by ``Wk``)
    * ``composed`` — ``Lx86[D'] ⊢_{R_lock} M1 : L_lock[D']`` (by ``Pcomp``)
    """

    base: LayerInterface
    low: LayerInterface
    atomic: LayerInterface
    module: Any
    fun_lift: Dict[int, Any]
    log_lift: Dict[int, Any]
    layer: Dict[int, Any]
    composed: Any


def lock_scenarios(lock: Any, config) -> List:
    """The protocol scenarios certifying acq/rel."""
    from ..core.simulation import Scenario

    return [
        Scenario("acq", [(ACQ, (lock,))], config),
        Scenario("acq_rel", [(ACQ, (lock,)), (REL, (lock,))], config),
        Scenario(
            "two_rounds",
            [(ACQ, (lock,)), (REL, (lock,)), (ACQ, (lock,)), (REL, (lock,))],
            config,
        ),
    ]


def certify_ticket_lock(
    domain: Sequence[int],
    lock: Any = "L",
    width_bits: int = 32,
    env_depth: int = 2,
    fuel: int = 2_000,
    focused: Optional[Sequence[int]] = None,
    use_c_source: bool = True,
):
    """Run the entire Fig. 5 derivation for the ticket lock.

    Builds ``Lx86`` over ``domain``, certifies the (C) implementation by
    fun-lift per focused participant, establishes the log-lift interface
    simulation, weakens, and parallel-composes over the focused set.
    Returns a :class:`CertifiedLockStack`; raises
    :class:`~repro.core.errors.VerificationError` if any obligation
    fails.
    """
    from ..clight.semantics import c_func_impl
    from ..core.calculus import interface_sim_rule, module_rule, pcomp_all, weaken
    from ..core.module import FuncImpl, Module
    from ..core.simulation import SimConfig

    focused = list(focused if focused is not None else domain)
    rely = lock_rely(domain, [lock], width_bits=width_bits)
    guar = lock_guarantee(domain, [lock], events=LOCK_EVENTS)
    base = lx86_like_interface(domain, width_bits, rely, guar)
    low = lock_low_interface(base, width_bits=width_bits)
    atomic = lock_atomic_interface(
        base, hide=["fai", "aload", "astore", "cas", "swap", "pull", "push"]
    )

    if use_c_source:
        unit = ticket_lock_unit()
        unit.width_bits = width_bits
        module = Module(
            {
                ACQ: c_func_impl(unit, ACQ),
                REL: c_func_impl(unit, REL),
            },
            name="M_ticket",
        )
    else:
        module = Module(
            {
                ACQ: FuncImpl(ACQ, acq_impl, lang="spec"),
                REL: FuncImpl(REL, rel_impl, lang="spec"),
            },
            name="M_ticket",
        )

    fun_lift = {}
    log_lift = {}
    layer = {}
    from ..core.relation import ID_REL

    relation = lock_relation(width_bits)
    for tid in focused:
        env_tids = [t for t in domain if t != tid]
        low_cfg = SimConfig(
            env_alphabet=low_env_alphabet(env_tids, [lock]),
            env_depth=env_depth,
            fuel=fuel,
            delivery="per_query",
        )
        at_cfg = SimConfig(
            env_alphabet=atomic_env_alphabet(env_tids, [lock]),
            env_depth=env_depth,
            fuel=fuel,
        )
        fun_lift[tid] = module_rule(
            base, module, low, ID_REL, tid, lock_scenarios(lock, low_cfg)
        )
        log_lift[tid] = interface_sim_rule(
            low, atomic, relation, tid, lock_scenarios(lock, at_cfg)
        )
        layer[tid] = weaken(fun_lift[tid], post=log_lift[tid])

    composed = layer[focused[0]]
    if len(focused) > 1:
        composed = pcomp_all([layer[tid] for tid in focused])

    return CertifiedLockStack(
        base=base,
        low=low,
        atomic=atomic,
        module=module,
        fun_lift=fun_lift,
        log_lift=log_lift,
        layer=layer,
        composed=composed,
    )


def lx86_like_interface(domain, width_bits, rely, guar):
    """Build the bottom interface (kept separate for import-cycle hygiene)."""
    from ..core.machint import IntWidth
    from ..machine.cpu_local import lx86_interface

    return lx86_interface(
        domain, width=IntWidth(width_bits), rely=rely, guar=guar
    )
