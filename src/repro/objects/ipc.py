"""Synchronous inter-process communication (paper Fig. 1, §6).

CertiKOS's "synchronous inter-process communication (IPC) protocol using
the queuing lock": a rendezvous channel where a sender blocks until a
receiver takes the message and vice versa.  Built entirely from the
certified layers below — queuing lock + condition variables — exercising
the whole Fig. 1 tower.

Channel state (in the qlock-protected block): a one-slot mailbox with a
``state`` field (EMPTY → FULL → TAKEN → EMPTY) and two condition
variables (``can_send``: mailbox empty; ``can_recv``: mailbox full).
The sender additionally waits for the TAKEN acknowledgement before
returning — that is what makes the IPC *synchronous*.

:func:`check_ipc_correctness` explores all bounded schedules of a
sender/receiver system: no run sticks, all runs complete (no lost
rendezvous), and every message is received exactly once, in per-sender
order.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.certificate import Certificate
from ..core.context import ExecutionContext
from ..core.errors import Stuck
from ..machine.sharedmem import local_copy
from .condvar import cv_signal_impl, cv_wait_impl
from .qlock import acq_q_impl, ql_loc, rel_q_impl
from .sched import CpuMap

EMPTY = 0
FULL = 1
TAKEN = 2


def ipc_lock(chan: Any) -> Tuple[str, Any]:
    """The queuing lock guarding IPC channel ``chan``."""
    return ("ipc", chan)


def cv_can_send(chan: Any) -> Tuple[str, Any]:
    return ("ipc_send", chan)


def cv_can_recv(chan: Any) -> Tuple[str, Any]:
    return ("ipc_recv", chan)


def _with_mailbox(ctx: ExecutionContext, chan, fn):
    """Access the mailbox under the channel's spinlock (uncontended —
    the caller holds the channel's queuing lock)."""
    lock = ipc_lock(chan)
    yield from ctx.call("acq", ql_loc(lock))
    copy = local_copy(ctx)[ql_loc(lock)]
    copy.setdefault("state", EMPTY)
    copy.setdefault("msg", None)
    result = fn(copy)
    yield from ctx.call("rel", ql_loc(lock))
    return result


def ipc_send_impl(ctx: ExecutionContext, chan, message):
    """Synchronous send: deposit, wake a receiver, wait for the take."""
    lock = ipc_lock(chan)
    yield from acq_q_impl(ctx, lock)
    # Wait for the mailbox to be free.
    while True:
        state = yield from _with_mailbox(ctx, chan, lambda m: m["state"])
        if state == EMPTY:
            break
        yield from cv_wait_impl(ctx, cv_can_send(chan), lock)
    yield from _with_mailbox(
        ctx, chan,
        lambda m: (m.__setitem__("state", FULL), m.__setitem__("msg", message)),
    )
    yield from cv_signal_impl(ctx, cv_can_recv(chan), lock)
    # Synchronous: block until the receiver acknowledges the take.
    while True:
        state = yield from _with_mailbox(ctx, chan, lambda m: m["state"])
        if state == TAKEN:
            break
        yield from cv_wait_impl(ctx, cv_can_send(chan), lock)
    yield from _with_mailbox(ctx, chan, lambda m: m.__setitem__("state", EMPTY))
    # The mailbox is free again: let the next sender in.
    yield from cv_signal_impl(ctx, cv_can_send(chan), lock)
    yield from rel_q_impl(ctx, lock)
    return None


def ipc_recv_impl(ctx: ExecutionContext, chan):
    """Synchronous receive: take the message and acknowledge."""
    lock = ipc_lock(chan)
    yield from acq_q_impl(ctx, lock)
    while True:
        state = yield from _with_mailbox(ctx, chan, lambda m: m["state"])
        if state == FULL:
            break
        yield from cv_wait_impl(ctx, cv_can_recv(chan), lock)
    message = yield from _with_mailbox(
        ctx, chan,
        lambda m: (m["msg"], m.__setitem__("state", TAKEN))[0],
    )
    # Wake the sender (and any waiting senders) for the acknowledgement.
    yield from cv_signal_impl(ctx, cv_can_send(chan), lock)
    yield from rel_q_impl(ctx, lock)
    return message


def check_ipc_correctness(
    cpus: CpuMap,
    init_current: Dict[int, int],
    senders: Dict[int, Sequence[Any]],
    receivers: Dict[int, int],
    chan: Any = 3,
    fuel: int = 80_000,
    max_rounds: int = 2_000,
    max_choice_depth: int = 8,
) -> Certificate:
    """Exhaustive rendezvous check: delivery exactly once, in order.

    ``senders[tid]`` is the message list thread ``tid`` sends;
    ``receivers[tid]`` how many messages thread ``tid`` receives.  The
    totals must match (otherwise runs legitimately diverge and only
    safety is checked).
    """
    from ..objects.qlock import ql_alloc_prim
    from ..threads.interface import build_lhtd
    from ..threads.linking import enumerate_thread_games

    interface = build_lhtd(cpus, init_current, locks=[ql_loc(ipc_lock(chan))])
    interface = interface.extend(interface.name, [ql_alloc_prim()])

    def sender(messages):
        def player(ctx):
            for message in messages:
                yield from ipc_send_impl(ctx, chan, message)
            return ("sent", list(messages))

        return player

    def receiver(count):
        def player(ctx):
            got = []
            for _ in range(count):
                message = yield from ipc_recv_impl(ctx, chan)
                got.append(message)
            return ("received", got)

        return player

    players = {}
    for tid, messages in senders.items():
        players[tid] = (sender(list(messages)), ())
    for tid, count in receivers.items():
        players[tid] = (receiver(count), ())

    results = enumerate_thread_games(
        interface, players, cpus, init_current,
        fuel=fuel, max_rounds=max_rounds, max_choice_depth=max_choice_depth,
    )
    total_sent = sum(len(m) for m in senders.values())
    total_recv = sum(receivers.values())
    cert = Certificate(
        judgment=f"synchronous IPC over channel {chan}",
        rule="ipc-correctness",
        bounds={"schedules": len(results), "messages": total_sent},
    )
    cert.add("at least one schedule explored", bool(results))
    balanced = total_sent == total_recv
    for result in results:
        label = f"sched={result.schedule[:8]}..."
        cert.add(f"run safe [{label}]", result.stuck is None, result.stuck or "")
        if balanced:
            cert.add(
                f"run completes — rendezvous never lost [{label}]",
                result.finished,
                f"unfinished after {result.rounds} rounds",
            )
        if result.finished:
            sent: List[Any] = []
            received: List[Any] = []
            for ret in result.rets.values():
                if isinstance(ret, tuple) and ret[0] == "sent":
                    sent.extend(ret[1])
                elif isinstance(ret, tuple) and ret[0] == "received":
                    received.extend(ret[1])
            cert.add(
                f"exactly-once delivery [{label}]",
                sorted(map(repr, sent)) == sorted(map(repr, received)),
                f"{sent} vs {received}",
            )
    cert.log_universe = tuple(r.log for r in results)
    return cert