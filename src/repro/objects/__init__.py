"""The certified concurrent object stack of Fig. 1.

Bottom up: ticket lock (:mod:`repro.objects.ticket_lock`), MCS lock
(:mod:`repro.objects.mcs_lock`), the sequential queue library
(:mod:`repro.objects.local_queue`), the lock-protected shared queue
(:mod:`repro.objects.shared_queue`), the thread scheduler
(:mod:`repro.objects.sched`), the queuing lock
(:mod:`repro.objects.qlock`), condition variables
(:mod:`repro.objects.condvar`) and synchronous IPC
(:mod:`repro.objects.ipc`).
"""

from . import (
    condvar,
    ipc,
    local_queue,
    mcs_lock,
    qlock,
    sched,
    shared_queue,
    ticket_lock,
)

__all__ = [
    "condvar",
    "ipc",
    "local_queue",
    "mcs_lock",
    "qlock",
    "sched",
    "shared_queue",
    "ticket_lock",
]
