"""The algebraic memory model (paper §5.5, Fig. 12).

"We can prove that a ternary relation ``m1 ⊛ m2 ≃ m`` holds between the
private memory states m1, m2 of two disjoint thread sets and the
thread-shared memory state m after the parallel composition."

The relation's axioms (Fig. 12):

* **Nb** — ``nb(m) = max(nb(m1), nb(m2))``
* **Comm** — ``⊛`` is commutative
* **Ld** — loads defined in a component are defined (same value) in the
  composite
* **St** — stores in a component commute with composition
* **Alloc** — the more-recently-running component (larger ``nb``) can
  allocate, and the composite allocates along
* **Lift-R / Lift-L** — empty placeholder blocks (allocated by the
  extended ``yield``/``sleep`` semantics for *other* threads' frames)
  absorb into the composite, with Lift-L discounting the placeholders
  the composite has already accounted for

:func:`join` *computes* the composite when the relation holds (each
permission-carrying block belongs to exactly one side);
:func:`check_join` decides the relation; ``rule_*`` functions are the
executable axioms, property-tested in ``tests/compiler`` and benched by
``benchmarks/bench_fig12_memjoin.py``.  :func:`join_all` is the N-thread
generalization the paper spells out at the end of §5.5.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.errors import Stuck
from .memmodel import Block, Memory


def check_join(m1: Memory, m2: Memory, m: Memory) -> bool:
    """Decide ``m1 ⊛ m2 ≃ m``.

    Requirements: block ids up to ``max(nb)`` partition into (a) owned by
    exactly one side (and the composite carries that side's block
    verbatim), and (b) empty on the side(s) that know them (the
    placeholder discipline: "every non-shared memory block of m1 either
    does not exist in m2 or corresponds to an empty block in m2").
    """
    if m.nb() != max(m1.nb(), m2.nb()):
        return False
    for bid in range(1, m.nb() + 1):
        b1 = m1.blocks.get(bid)
        b2 = m2.blocks.get(bid)
        bm = m.blocks.get(bid)
        owner = None
        if b1 is not None and not b1.empty:
            owner = b1
        if b2 is not None and not b2.empty:
            if owner is not None:
                return False  # both sides claim the block
            owner = b2
        if owner is not None:
            if bm is None or bm.empty:
                return False
            if (bm.lo, bm.hi, bm.writable, bm.data) != (
                owner.lo, owner.hi, owner.writable, owner.data
            ):
                return False
        else:
            # Known only as placeholders (or not at all): the composite
            # must carry it as empty (ids below nb(m) always exist).
            if bm is not None and not bm.empty:
                return False
    return True


def join(m1: Memory, m2: Memory) -> Memory:
    """Compute the composite ``m`` with ``m1 ⊛ m2 ≃ m``.

    Raises :class:`Stuck` when the relation cannot hold (a block owned by
    both sides).
    """
    m = Memory()
    m._next = max(m1._next, m2._next)
    for bid in range(1, m._next):
        b1 = m1.blocks.get(bid)
        b2 = m2.blocks.get(bid)
        owner: Optional[Block] = None
        if b1 is not None and not b1.empty:
            owner = b1
        if b2 is not None and not b2.empty:
            if owner is not None:
                raise Stuck(
                    f"memory join conflict: block {bid} owned by both sides"
                )
            owner = b2
        if owner is not None:
            m.blocks[bid] = owner.copy()
        elif b1 is not None or b2 is not None:
            m.blocks[bid] = Block(0, 0, writable=False, empty=True)
    return m


def join_all(memories: Sequence[Memory]) -> Memory:
    """The N-thread generalization (§5.5 last paragraph).

    ``m`` composes ``m1..mN`` iff there is ``m'`` composing ``m1..mN-1``
    with ``mN ⊛ m' ≃ m`` — i.e. a left fold of :func:`join`.
    """
    if not memories:
        return Memory()
    result = memories[0].snapshot()
    for memory in memories[1:]:
        result = join(result, memory)
    return result


# --- the Fig. 12 axioms as executable checks -------------------------------------


def rule_nb(m1: Memory, m2: Memory, m: Memory) -> bool:
    """Nb: ``nb(m) = max(nb(m1), nb(m2))``."""
    return not check_join(m1, m2, m) or m.nb() == max(m1.nb(), m2.nb())


def rule_comm(m1: Memory, m2: Memory, m: Memory) -> bool:
    """Comm: ``m1 ⊛ m2 ≃ m  ⟹  m2 ⊛ m1 ≃ m``."""
    return not check_join(m1, m2, m) or check_join(m2, m1, m)


def rule_ld(m1: Memory, m2: Memory, m: Memory, bid: int, offset: int) -> bool:
    """Ld: a defined load in ``m2`` is preserved by ``m``."""
    if not check_join(m1, m2, m):
        return True
    value = m2.load_opt(bid, offset)
    if value is None:
        return True
    return m.load_opt(bid, offset) == value


def rule_st(m1: Memory, m2: Memory, m: Memory, bid: int, offset: int, value) -> bool:
    """St: ``m1 ⊛ st(m2, ℓ, v) ≃ st(m, ℓ, v)``."""
    if not check_join(m1, m2, m):
        return True
    block = m2.blocks.get(bid)
    if block is None or block.empty or not block.writable:
        return True
    if not (block.lo <= offset < block.hi):
        return True
    m2s = m2.snapshot()
    ms = m.snapshot()
    m2s.store(bid, offset, value)
    ms.store(bid, offset, value)
    return check_join(m1, m2s, ms)


def rule_alloc(m1: Memory, m2: Memory, m: Memory, lo: int, hi: int) -> bool:
    """Alloc: with ``nb(m1) ≤ nb(m2)``, allocation in ``m2`` lifts to ``m``."""
    if not check_join(m1, m2, m) or m1.nb() > m2.nb():
        return True
    m2s = m2.snapshot()
    ms = m.snapshot()
    m2s.alloc(lo, hi)
    ms.alloc(lo, hi)
    return check_join(m1, m2s, ms)


def rule_lift_r(m1: Memory, m2: Memory, m: Memory, n: int) -> bool:
    """Lift-R: with ``nb(m1) ≤ nb(m2)``, placeholder allocation in ``m2``
    lifts to ``m``."""
    if not check_join(m1, m2, m) or m1.nb() > m2.nb():
        return True
    m2s = m2.snapshot()
    ms = m.snapshot()
    m2s.liftnb(n)
    ms.liftnb(n)
    return check_join(m1, m2s, ms)


def rule_lift_l(m1: Memory, m2: Memory, m: Memory, n: int) -> bool:
    """Lift-L: placeholders on the lagging side are partly absorbed.

    ``liftnb(m1, n) ⊛ m2 ≃ liftnb(m, n - (nb(m) - nb(m1)))`` — the
    composite only allocates the placeholders not yet covered by the
    blocks the other side created meanwhile.
    """
    if not check_join(m1, m2, m) or m1.nb() > m2.nb():
        return True
    m1s = m1.snapshot()
    ms = m.snapshot()
    m1s.liftnb(n)
    absorb = m.nb() - m1.nb()
    ms.liftnb(max(0, n - absorb))
    return check_join(m1s, m2, ms)
