"""CompCertX-analog code generation: mini-C → mini-x86.

Per-function (separate) compilation, in the image of CompCertX: each
function is compiled against the *layer interface* it runs over —
primitive calls become ``prim`` instructions whose semantics is the
underlay specification, so compiled code slots into exactly the same
concurrent machine as the source.

Strategy: a one-pass stack machine.  Locals and parameters live in
numbered slots of the stack-frame *block* (allocated per invocation by
the asm semantics — the frames §5.5's algebraic memory model merges);
expression temporaries use the operand stack.

**Compilable subset**: scalar functions — locals, machine-integer
arithmetic, tuples (address formation), control flow, primitive and
intra-unit calls.  Functions touching interpreter-level structured
places (``Glob``/``Shared``/``Arr``/``Fld``) raise
:class:`CompileError` and remain at the C layer, mirroring how the
original development keeps some routines out of the compiled set.  The
lock implementations (ticket, MCS) fall inside the subset and are the
compilation targets the benchmarks validate.

Short-circuit note: mini-C expressions are pure, so ``&&``/``||`` are
compiled strictly; the only observable difference would be via partial
operators, which the validator would catch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..clight.ast import (
    Arr,
    Assert,
    Assign,
    Binop,
    Break,
    Call,
    CFunction,
    Const,
    Continue,
    Expr,
    Fld,
    Glob,
    If,
    Return,
    Seq,
    Shared,
    Skip,
    Stmt,
    TranslationUnit,
    Tup,
    Unop,
    Var,
    While,
)
from ..core.errors import CCALError
from ..asm.ast import (
    Alu,
    AsmFunction,
    AsmUnit,
    Br,
    EAX,
    EBX,
    Imm,
    Instr,
    Jmp,
    Label,
    MakeTuple,
    Mov,
    Pop,
    PrimCall,
    Push,
    Reg,
    Ret,
    Slot,
)
from ..asm.ast import Call as AsmCall

_EAX = Reg(EAX)
_EBX = Reg(EBX)


class CompileError(CCALError):
    """The function falls outside the compilable scalar subset."""


class _FnCompiler:
    def __init__(self, fn: CFunction, unit: TranslationUnit):
        self.fn = fn
        self.unit = unit
        self.slots: Dict[str, int] = {p: i for i, p in enumerate(fn.params)}
        self.code: List[Instr] = []
        self.label_counter = 0
        self.loop_stack: List[Tuple[str, str]] = []  # (continue, break)

    def fresh_label(self, hint: str) -> str:
        self.label_counter += 1
        return f".{self.fn.name}_{hint}_{self.label_counter}"

    def slot_of(self, name: str) -> Slot:
        if name not in self.slots:
            self.slots[name] = len(self.slots)
        return Slot(self.slots[name])

    # -- expressions (leave the value on the operand stack) -------------------

    def expr(self, e: Expr) -> None:
        if isinstance(e, Const):
            self.code.append(Push(Imm(e.value)))
        elif isinstance(e, Var):
            if e.name not in self.slots:
                raise CompileError(f"{self.fn.name}: read of unset local {e.name!r}")
            self.code.append(Push(self.slot_of(e.name)))
        elif isinstance(e, Tup):
            for item in e.items:
                self.expr(item)
            self.code.append(MakeTuple(_EAX, len(e.items)))
            self.code.append(Push(_EAX))
        elif isinstance(e, Binop):
            self.expr(e.left)
            self.expr(e.right)
            self.code.append(Pop(_EBX))
            self.code.append(Pop(_EAX))
            op = e.op
            if op == "&&":
                # strict: (a != 0) & (b != 0)
                self.code.append(Alu("!=", _EAX, _EAX, Imm(0)))
                self.code.append(Alu("!=", _EBX, _EBX, Imm(0)))
                op = "&"
            elif op == "||":
                self.code.append(Alu("!=", _EAX, _EAX, Imm(0)))
                self.code.append(Alu("!=", _EBX, _EBX, Imm(0)))
                op = "|"
            self.code.append(Alu(op, _EAX, _EAX, _EBX))
            self.code.append(Push(_EAX))
        elif isinstance(e, Unop):
            self.expr(e.arg)
            self.code.append(Pop(_EAX))
            if e.op == "-":
                self.code.append(Alu("-", _EAX, Imm(0), _EAX))
            elif e.op == "!":
                self.code.append(Alu("==", _EAX, _EAX, Imm(0)))
            elif e.op == "~":
                self.code.append(Alu("^", _EAX, _EAX, Imm(-1)))
            else:
                raise CompileError(f"unary {e.op!r} not compilable")
            self.code.append(Push(_EAX))
        elif isinstance(e, (Glob, Shared, Arr, Fld)):
            raise CompileError(
                f"{self.fn.name}: structured place {e} outside the scalar subset"
            )
        else:
            raise CompileError(f"cannot compile expression {e!r}")

    # -- statements -----------------------------------------------------------

    def stmt(self, s: Stmt) -> None:
        if isinstance(s, Skip):
            return
        if isinstance(s, Seq):
            for sub in s.stmts:
                self.stmt(sub)
            return
        if isinstance(s, Assign):
            if not isinstance(s.place, Var):
                raise CompileError(
                    f"{self.fn.name}: assignment to {s.place} outside the "
                    f"scalar subset"
                )
            self.expr(s.value)
            self.code.append(Pop(_EAX))
            self.code.append(Mov(self.slot_of(s.place.name), _EAX))
            return
        if isinstance(s, If):
            else_label = self.fresh_label("else")
            end_label = self.fresh_label("endif")
            self.expr(s.cond)
            self.code.append(Pop(_EAX))
            self.code.append(Alu("==", _EAX, _EAX, Imm(0)))
            self.code.append(Br(_EAX, else_label))
            self.stmt(s.then)
            self.code.append(Jmp(end_label))
            self.code.append(Label(else_label))
            self.stmt(s.els)
            self.code.append(Label(end_label))
            return
        if isinstance(s, While):
            head = self.fresh_label("loop")
            end = self.fresh_label("endloop")
            self.code.append(Label(head))
            self.expr(s.cond)
            self.code.append(Pop(_EAX))
            self.code.append(Alu("==", _EAX, _EAX, Imm(0)))
            self.code.append(Br(_EAX, end))
            self.loop_stack.append((head, end))
            self.stmt(s.body)
            self.loop_stack.pop()
            self.code.append(Jmp(head))
            self.code.append(Label(end))
            return
        if isinstance(s, Break):
            if not self.loop_stack:
                raise CompileError("break outside a loop")
            self.code.append(Jmp(self.loop_stack[-1][1]))
            return
        if isinstance(s, Continue):
            if not self.loop_stack:
                raise CompileError("continue outside a loop")
            self.code.append(Jmp(self.loop_stack[-1][0]))
            return
        if isinstance(s, Return):
            if s.value is not None:
                self.expr(s.value)
                self.code.append(Pop(_EAX))
            else:
                self.code.append(Mov(_EAX, Imm(None)))
            self.code.append(Ret())
            return
        if isinstance(s, Call):
            for arg in s.args:
                self.expr(arg)
            if s.fn in self.unit.functions:
                self.code.append(AsmCall(s.fn, len(s.args)))
            else:
                self.code.append(PrimCall(s.fn, len(s.args)))
            if s.dst is not None:
                if not isinstance(s.dst, Var):
                    raise CompileError(
                        f"{self.fn.name}: call destination {s.dst} outside "
                        f"the scalar subset"
                    )
                self.code.append(Mov(self.slot_of(s.dst.name), _EAX))
            return
        if isinstance(s, Assert):
            raise CompileError("assert is a verification-harness statement")
        raise CompileError(f"cannot compile statement {s!r}")

    def compile(self) -> AsmFunction:
        self.stmt(self.fn.body)
        # Implicit void return at the end of the body.
        self.code.append(Mov(_EAX, Imm(None)))
        self.code.append(Ret())
        return AsmFunction(
            self.fn.name,
            self.fn.params,
            self.code,
            frame_size=max(16, len(self.slots) + 1),
            doc=f"compiled from C: {self.fn.doc}" if self.fn.doc else "compiled from C",
        )


def compile_function(fn: CFunction, unit: TranslationUnit) -> AsmFunction:
    """Compile one mini-C function to mini-x86 (separate compilation)."""
    return _FnCompiler(fn, unit).compile()


def compile_unit(
    unit: TranslationUnit, skip_uncompilable: bool = False
) -> AsmUnit:
    """Compile a translation unit function by function.

    With ``skip_uncompilable`` functions outside the scalar subset are
    left out (they remain C-level primitives of the layer); otherwise
    :class:`CompileError` propagates.
    """
    out = AsmUnit(unit.name + ".s")
    for name, fn in unit.functions.items():
        try:
            out.add(compile_function(fn, unit))
        except CompileError:
            if not skip_uncompilable:
                raise
    return out
