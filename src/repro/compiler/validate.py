"""Thread-safe translation validation (the CompCertX correctness analog).

CompCertX is a *verified* compiler: compilation correctness is proved
once in Coq.  The Python substitution is per-function **translation
validation**: for every compiled function we check the simulation
``LasmκM_{L} ≤_id LκM_{L}`` directly — the compiled player, run over the
same layer interface under the same environment behaviours, must produce
the identical event log and return value.  That is exactly the statement
CompCertX contributes to the Fig. 5 pipeline ("thread-safe compilation":
the compiled module can replace the source module in the certified
layer), established per compilation unit instead of once-and-for-all
(see DESIGN.md §1).

Thread-safety itself — that per-thread stack frames compose into one
coherent memory — is the algebraic memory model's job
(:mod:`repro.compiler.memjoin`) and is checked by
:func:`repro.threads.stackmerge.check_stack_merge`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..clight.ast import TranslationUnit
from ..clight.semantics import c_player

if True:  # deferred to break the asm ↔ compiler package cycle
    from typing import TYPE_CHECKING
    if TYPE_CHECKING:  # pragma: no cover
        from ..asm.ast import AsmUnit
from ..core.certificate import Certificate, CertifiedLayer, stamp_provenance
from ..core.interface import LayerInterface
from ..core.module import FuncImpl, Module
from ..core.relation import ID_REL
from ..core.simulation import SimConfig, check_sim
from ..obs import span
from ..obs.metrics import MetricsWindow, inc
from .codegen import CompileError, compile_unit


def validate_function(
    interface: LayerInterface,
    c_unit: TranslationUnit,
    asm_unit,
    name: str,
    tid: int,
    config: SimConfig,
) -> Certificate:
    """Check one compiled function against its source (Def. 2.1, R = id)."""
    from ..asm.semantics import asm_player

    with span("compcertx.validate_function", function=name):
        inc("compcertx.functions_validated")
        return check_sim(
            interface,
            asm_player(asm_unit, name, c_unit.width_bits),
            interface,
            c_player(c_unit, name),
            ID_REL,
            tid,
            config,
            judgment=f"CompCertX({name}): asm ≤_id C over {interface.name}",
            rule="ThreadSafeCompilation",
        )


def _seq_player(players: Dict[str, Callable], calls: Sequence[Tuple[str, Tuple]]):
    """A player running a call sequence through per-function players."""

    def player(ctx):
        rets = []
        for index, (name, args) in enumerate(calls):
            ctx.scenario_call = index
            ret = yield from players[name](ctx, *args)
            rets.append(ret)
        return rets

    return player


def compile_and_validate(
    interface: LayerInterface,
    c_unit: TranslationUnit,
    tid: int,
    scenarios: Sequence[Tuple[str, Sequence[Tuple[str, Tuple]], SimConfig]],
    skip_uncompilable: bool = True,
):
    """Compile a unit and validate it against the source per scenario.

    ``scenarios`` are ``(label, calls, config)`` triples: each call
    sequence (respecting the functions' protocols — e.g. acquire before
    release) is run through both the source and the compiled unit under
    every bounded environment behaviour; logs and return values must
    agree exactly.  Every compiled function must be covered by at least
    one scenario.
    """
    from ..asm.semantics import asm_player

    started = time.perf_counter()
    window = MetricsWindow()
    with span(
        "compcertx.compile_and_validate",
        unit=c_unit.name,
        scenarios=len(scenarios),
    ):
        asm_unit = compile_unit(c_unit, skip_uncompilable=skip_uncompilable)
        inc("compcertx.units_compiled")
        cert = Certificate(
            judgment=f"CompCertX({c_unit.name}): compiled unit ≤_id source unit",
            rule="ThreadSafeCompilation",
            bounds={"functions": sorted(asm_unit.functions)},
        )
        covered = {name for _, calls, _ in scenarios for name, _ in calls}
        for name in sorted(asm_unit.functions):
            cert.add(
                f"{name} covered by a validation scenario", name in covered
            )
        c_players = {
            name: c_player(c_unit, name) for name in asm_unit.functions
        }
        a_players = {
            name: asm_player(asm_unit, name, c_unit.width_bits)
            for name in asm_unit.functions
        }
        for label, calls, config in scenarios:
            cert.children.append(
                check_sim(
                    interface,
                    _seq_player(a_players, calls),
                    interface,
                    _seq_player(c_players, calls),
                    ID_REL,
                    tid,
                    config,
                    judgment=(
                        f"CompCertX({c_unit.name}) :: {label}: asm ≤_id C"
                    ),
                    rule="ThreadSafeCompilation",
                )
            )
    stamp_provenance(
        cert, time.perf_counter() - started, window,
        functions=sorted(asm_unit.functions),
        scenarios=len(scenarios),
    )
    return asm_unit, cert


def compiled_module(
    asm_unit, names: Iterable[str], width_bits: int = 32
) -> Module:
    """Package compiled functions as a module (for re-certification)."""
    from ..asm.semantics import asm_func_impl

    return Module(
        {
            name: asm_func_impl(asm_unit, name, width_bits)
            for name in names
        },
        name=f"{asm_unit.name}",
    )
