"""The CompCertX analog: memory models, codegen, translation validation.

Block memory (:mod:`repro.compiler.memmodel`), the Fig. 12 algebraic
memory model (:mod:`repro.compiler.memjoin`), mini-C → mini-x86 code
generation (:mod:`repro.compiler.codegen`) and per-function thread-safe
translation validation (:mod:`repro.compiler.validate`).
"""

from .memmodel import Block, Memory, extends
from .memjoin import (
    check_join,
    join,
    join_all,
    rule_alloc,
    rule_comm,
    rule_ld,
    rule_lift_l,
    rule_lift_r,
    rule_nb,
    rule_st,
)
from .codegen import CompileError, compile_function, compile_unit
from .validate import compile_and_validate, compiled_module, validate_function

__all__ = [name for name in dir() if not name.startswith("_")]
