"""A CompCert-style block memory model (Leroy & Blazy).

"In the CompCert memory model, whenever a function is called, a fresh
memory block has to be allocated in the memory for its stack frame"
(§5.5).  We reproduce the structure the thread-safe CompCertX extension
needs:

* memory = a sequence of *blocks*, identified by allocation order;
  ``nb(m)`` is the number of blocks allocated so far;
* blocks carry bounds and per-block data; *empty blocks* (no access
  permissions) are the placeholders the extended ``yield``/``sleep``
  semantics allocates for other threads' stack frames;
* ``liftnb(m, n)`` extends a memory with ``n`` fresh empty blocks;
* loads/stores respect permissions; accessing an empty block is an
  error (it is another thread's frame).

Values stored are whatever the interpreters produce (machine integers,
tuples, pointers as ``(block, offset)`` pairs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.errors import Stuck


@dataclass
class Block:
    """One memory block: bounds, permission, contents."""

    lo: int
    hi: int
    writable: bool = True
    #: Empty blocks have no access permissions at all — the §5.5
    #: placeholders for other threads' frames.
    empty: bool = False
    data: Dict[int, Any] = field(default_factory=dict)

    def copy(self) -> "Block":
        return Block(self.lo, self.hi, self.writable, self.empty, dict(self.data))


class Memory:
    """A block memory.  Mutable; ``snapshot()`` deep-copies."""

    def __init__(self):
        self.blocks: Dict[int, Block] = {}
        self._next = 1

    # -- allocation ---------------------------------------------------------

    def alloc(self, lo: int, hi: int) -> int:
        """Allocate a fresh block ``[lo, hi)``; returns its id."""
        bid = self._next
        self._next += 1
        self.blocks[bid] = Block(lo, hi)
        return bid

    def alloc_empty(self) -> int:
        """Allocate a permissionless placeholder block (``liftnb`` unit)."""
        bid = self._next
        self._next += 1
        self.blocks[bid] = Block(0, 0, writable=False, empty=True)
        return bid

    def free(self, bid: int) -> None:
        """Drop all permissions of a block (CompCert's free keeps the id)."""
        block = self._require(bid)
        block.empty = True
        block.writable = False
        block.data.clear()

    def nb(self) -> int:
        """``nb(m)`` — the number of blocks allocated so far."""
        return self._next - 1

    def liftnb(self, n: int) -> None:
        """``liftnb(m, n)`` — extend with ``n`` fresh empty blocks."""
        for _ in range(n):
            self.alloc_empty()

    # -- access --------------------------------------------------------------

    def _require(self, bid: int) -> Block:
        block = self.blocks.get(bid)
        if block is None:
            raise Stuck(f"access to unallocated block {bid}")
        return block

    def load(self, bid: int, offset: int) -> Any:
        block = self._require(bid)
        if block.empty:
            raise Stuck(f"load from empty (foreign-frame) block {bid}")
        if not (block.lo <= offset < block.hi):
            raise Stuck(f"load out of bounds: block {bid} offset {offset}")
        if offset not in block.data:
            raise Stuck(f"load of undefined value: block {bid} offset {offset}")
        return block.data[offset]

    def load_opt(self, bid: int, offset: int) -> Optional[Any]:
        """CompCert's ``ld(m, ℓ) = ⌊v⌋`` shape: None when undefined."""
        try:
            return self.load(bid, offset)
        except Stuck:
            return None

    def store(self, bid: int, offset: int, value: Any) -> None:
        block = self._require(bid)
        if block.empty:
            raise Stuck(f"store to empty (foreign-frame) block {bid}")
        if not block.writable:
            raise Stuck(f"store to read-only block {bid}")
        if not (block.lo <= offset < block.hi):
            raise Stuck(f"store out of bounds: block {bid} offset {offset}")
        block.data[offset] = value

    # -- structure ------------------------------------------------------------

    def snapshot(self) -> "Memory":
        copy = Memory()
        copy._next = self._next
        copy.blocks = {bid: block.copy() for bid, block in self.blocks.items()}
        return copy

    def owned_blocks(self) -> List[int]:
        """Ids of non-empty (permission-carrying) blocks."""
        return [bid for bid, block in self.blocks.items() if not block.empty]

    def __eq__(self, other):
        if not isinstance(other, Memory):
            return NotImplemented
        if self._next != other._next:
            return False
        for bid in set(self.blocks) | set(other.blocks):
            a, b = self.blocks.get(bid), other.blocks.get(bid)
            if a is None or b is None:
                return False
            if (a.lo, a.hi, a.writable, a.empty, a.data) != (
                b.lo, b.hi, b.writable, b.empty, b.data
            ):
                return False
        return True

    def __repr__(self):
        owned = self.owned_blocks()
        return f"Memory(nb={self.nb()}, owned={owned})"


def extends(m1: Memory, m2: Memory) -> bool:
    """CompCert's memory extension: ``m2`` has at least ``m1``'s contents
    and possibly more blocks/permissions (the §5.5 extension "only
    removes the access permissions of some memory blocks" — read the
    other way around)."""
    if m2.nb() < m1.nb():
        return False
    for bid, block in m1.blocks.items():
        if block.empty:
            continue
        other = m2.blocks.get(bid)
        if other is None or other.empty:
            return False
        for offset, value in block.data.items():
            if other.data.get(offset) != value:
                return False
    return True
