"""repro — an executable Python reproduction of CCAL.

*Certified Concurrent Abstraction Layers* (Gu et al., PLDI 2018) presents
CCAL, a Coq toolkit for specifying, composing, compiling and linking
certified concurrent abstraction layers.  This package reproduces the
toolkit as an executable-semantics and certificate-checking library:

- :mod:`repro.core` — the game-semantic compositional model (events,
  logs, replay functions, strategies, environment contexts), layer
  interfaces, the strategy-simulation checker (Def. 2.1), the layer
  calculus (Fig. 9), and contextual-refinement soundness (Thm 2.2).
- :mod:`repro.machine` — the multicore machine model ``Mx86`` (Fig. 7),
  the push/pull shared-memory model, hardware schedulers, CPU-local
  interfaces, and multicore linking (Thm 3.1).
- :mod:`repro.clight` / :mod:`repro.asm` — the mini-C and mini-x86
  languages layer implementations are written in.
- :mod:`repro.compiler` — the CompCertX analog: per-function compilation
  with translation validation and the algebraic memory model (Fig. 12).
- :mod:`repro.objects` — the certified object stack of Fig. 1: ticket and
  MCS locks, local and shared queues, the thread scheduler, queuing
  locks, condition variables and IPC.
- :mod:`repro.threads` — multithreaded and thread-local layer interfaces
  and linking (Thm 5.1).
- :mod:`repro.verify` — C/asm verifiers, a linearizability checker and a
  progress (starvation-freedom) checker.
- :mod:`repro.obs` — opt-in tracing, metrics and certificate provenance
  (Chrome ``trace_event`` export, counters/histograms, run reports).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

__version__ = "1.0.0"

from . import core, obs

__all__ = ["core", "obs", "__version__"]
