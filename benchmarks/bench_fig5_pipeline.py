"""Fig. 5: the complete layer-verification pipeline for the lock example.

The figure's derivation, executed end to end with per-stage accounting:

1. fun-lift        — ``L0[i] ⊢_R1 M1 : L1[i]`` (code ≤ low-level strategy)
2. log-lift        — ``L'1[i] ≤_{R} L1[i]`` (interface simulation)
3. weakening (Wk)  — combine 1 and 2
4. vertical composition — stack the shared queue on the lock layer
5. thread-safe compilation — CompCertX translation validation
6. parallel composition — both CPUs focused
7. soundness       — contextual refinement for client programs (Thm 2.2)
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table, record_bench
from repro.core import SimConfig, check_soundness
from repro.compiler import compile_and_validate
from repro.objects.shared_queue import certify_shared_queue
from repro.objects.ticket_lock import (
    certify_ticket_lock,
    low_env_alphabet,
    ticket_lock_unit,
)
from repro.machine import lx86_interface
from repro.objects.ticket_lock import lock_guarantee, lock_rely


def run_pipeline():
    stages = []

    def stage(label, thunk):
        start = time.perf_counter()
        result = thunk()
        stages.append((label, time.perf_counter() - start, result))
        return result

    # Stages 1-3 + 6: the lock derivation driver runs fun-lift,
    # log-lift, Wk and Pcomp internally.
    stack = stage(
        "fun-lift + log-lift + Wk + Pcomp (ticket lock)",
        lambda: certify_ticket_lock([1, 2], lock="q0"),
    )
    # Stage 4: vertical composition — the shared queue over L_lock.
    queue = stage(
        "Vcomp substrate (shared queue over L_lock)",
        lambda: certify_shared_queue([1, 2], queue="rdq"),
    )
    # Stage 5: thread-safe compilation of the lock module.
    def compile_stage():
        D, lock = [1, 2], "q0"
        base = lx86_interface(
            D, rely=lock_rely(D, [lock]), guar=lock_guarantee(D, [lock])
        )
        cfg = SimConfig(
            env_alphabet=low_env_alphabet([2], [lock]), env_depth=1, fuel=500
        )
        return compile_and_validate(
            base, ticket_lock_unit(), 1,
            [("acq", [("acq", (lock,))], cfg),
             ("acq_rel", [("acq", (lock,)), ("rel", (lock,))], cfg)],
        )

    _asm, compile_cert = stage("thread-safe CompCertX", compile_stage)
    # Stage 7: the soundness theorem over the composed lock layer.
    soundness = stage(
        "soundness (Thm 2.2, contextual refinement)",
        lambda: check_soundness(
            stack.composed,
            clients=[{1: [("acq", ("q0",)), ("rel", ("q0",))],
                      2: [("acq", ("q0",)), ("rel", ("q0",))]}],
            max_rounds=20,
            require_progress=False,
        ),
    )
    return stages, stack, queue, compile_cert, soundness


def test_fig5_full_pipeline(benchmark):
    stages, stack, queue, compile_cert, soundness = benchmark.pedantic(
        run_pipeline, rounds=1, iterations=1
    )
    rows = []
    total_obligations = 0
    for label, seconds, result in stages:
        if hasattr(result, "composed"):
            count = result.composed.certificate.obligation_count()
        elif hasattr(result, "certificate"):
            count = result.certificate.obligation_count()
        elif isinstance(result, dict) and "composed" in result:
            count = result["composed"].certificate.obligation_count()
        elif isinstance(result, tuple):
            count = result[1].obligation_count()
        else:
            count = result.obligation_count()
        total_obligations += count
        rows.append([label, f"{seconds * 1000:.1f} ms", count])
    rows.append(["TOTAL", "", total_obligations])
    from repro.obs.store import certificate_digest

    record_bench(
        stages=[
            {"stage": label, "seconds": round(seconds, 6)}
            for label, seconds, _ in stages
        ],
        total_obligations=total_obligations,
        # Content digests name *what was proved*, so the run ledger can
        # correlate bench timings with certificate identity across runs.
        certificates={
            "lock_stack": certificate_digest(stack.composed.certificate),
            "soundness": certificate_digest(soundness),
        },
    )
    print_table(
        "Fig. 5 — the layer-verification pipeline",
        ["stage", "time", "obligations"],
        rows,
    )
    assert stack.composed.certificate.ok
    assert queue["composed"].certificate.ok
    assert compile_cert.ok
    assert soundness.ok
    assert total_obligations > 150
