"""Obligation-granular incremental re-verification speedup.

The CompCertX separate-compilation argument, one level finer: after
editing one ticket-lock primitive, a re-verification of the whole
multi-stack workload (ticket + MCS + shared queue + the Thm 2.2
soundness game) must re-check only the obligations whose dependency
slice contains the edit.  The MCS and queue stacks reload at rule
level; the ticket stack reassembles from warm per-obligation entries,
re-checking only the scenarios that reach ``rel``.

Gate: the incremental re-run is at least ``SPEEDUP_FLOOR``× faster
than the cold run, and the obligation cache reports genuine partial
reuse (some obligations warm, some re-checked — an all-warm or
all-cold run would mean the slice keys are broken in one direction or
the other).
"""

from __future__ import annotations

import os
import time

from conftest import print_table, record_bench, scratch_path

import repro.objects.ticket_lock as tl
from repro.core import check_soundness
from repro.objects.ticket_lock import FAI, PUSH, n_cell
from repro.objects.mcs_lock import certify_mcs_lock
from repro.objects.shared_queue import certify_shared_queue
from repro.parallel.cache import incremental_collector

SPEEDUP_FLOOR = 5.0


def rel_impl_edited(ctx, lock):
    """Bytecode-different, semantically identical ``rel`` (the edit).

    Callees are module-level names so the dependency slice stays exact
    (attribute access would force the honest whole-rule fallback).
    """
    yield from ctx.call(PUSH, lock)
    yield from ctx.call(FAI, n_cell(lock))
    _edited = True
    return None


def _workload():
    """Ticket + MCS + queue + soundness — the Fig. 5 CI unit, multi-stack.

    The edit lands in the ticket lock's ``rel``; the MCS and queue
    stacks and the soundness game over the MCS stack are untouched, so
    a working incremental cache reloads them at rule level and pays
    only for the ticket obligations whose slice reaches ``rel``.
    """
    stack = tl.certify_ticket_lock([1, 2], lock="q0", use_c_source=False)
    mcs = certify_mcs_lock([1, 2, 3], lock="q0")
    certify_shared_queue([1, 2, 3], queue="rdq")
    check_soundness(
        mcs.composed,
        clients=[{t: [("acq", ("q0",)), ("rel", ("q0",))] for t in (1, 2)}],
        max_rounds=18,
        require_progress=False,
    )
    return stack


def test_incremental_speedup(benchmark, tmp_path_factory, monkeypatch):
    cache_dir = tmp_path_factory.mktemp("incremental-cache")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    monkeypatch.delenv("REPRO_JOBS", raising=False)

    started = time.perf_counter()
    with incremental_collector() as cold_counts:
        _workload()
    cold_s = time.perf_counter() - started

    # The edit: one ticket-lock primitive changes bytecode.
    monkeypatch.setattr(tl, "rel_impl", rel_impl_edited)

    def incremental_run():
        with incremental_collector() as counts:
            _workload()
        return counts

    started = time.perf_counter()
    warm_counts = benchmark.pedantic(incremental_run, rounds=1, iterations=1)
    incremental_s = time.perf_counter() - started

    speedup = cold_s / incremental_s if incremental_s else float("inf")
    rows = [
        ["cold (fresh cache)", f"{cold_s * 1000:.0f} ms",
         f"{cold_counts['rechecked']} obligations checked"],
        ["incremental (1 prim edited)", f"{incremental_s * 1000:.0f} ms",
         f"{warm_counts['reused']} reused / "
         f"{warm_counts['rechecked']} re-checked"],
        ["speedup", f"{speedup:.1f}x", f"floor {SPEEDUP_FLOOR:.0f}x"],
    ]
    record_bench(
        cold_s=round(cold_s, 6),
        incremental_s=round(incremental_s, 6),
        speedup=round(speedup, 3),
        cold_rechecked=cold_counts["rechecked"],
        warm_reused=warm_counts["reused"],
        warm_rechecked=warm_counts["rechecked"],
        warm_slice_misses=warm_counts["slice_misses"],
    )
    print_table(
        "Incremental re-verification — edit one ticket-lock primitive",
        ["run", "time", "obligations"],
        rows,
    )
    # Cold run checks everything; the edited run must show *partial*
    # reuse: warm entries for unchanged slices, re-checks for the rest.
    assert cold_counts["rechecked"] > 0
    assert warm_counts["reused"] > 0, "no obligation reloaded warm"
    assert warm_counts["rechecked"] > 0, "edit never re-checked anything"
    assert warm_counts["rechecked"] < cold_counts["rechecked"], (
        "incremental run re-checked as much as the cold run"
    )
    assert warm_counts["slice_misses"] == 0, (
        "edit should resolve exactly, not via the whole-rule fallback"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental run only {speedup:.1f}x faster than cold "
        f"(floor {SPEEDUP_FLOOR:.0f}x)"
    )
