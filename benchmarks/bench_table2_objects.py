"""Table 2: per-object verification statistics.

Paper columns per certified object: C&Asm source, specification,
invariant proof, C&Asm proof, simulation proof (all Coq LOC).  The
reproduction's analog per object: mini-C source size, module LOC
(specs + relations + invariants live there), and the number of
obligations its certification discharges.

The *shape* claims checked:

* the lock-reusing objects (shared queue, queuing lock) are much
  cheaper than the locks themselves — "using verified lock modules to
  build atomic objects such as shared queues is relatively simple and
  does not require many lines of code" (§6);
* the MCS lock costs more than the ticket lock (287 vs 74 source LOC in
  the paper).
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.objects.mcs_lock import certify_mcs_lock, mcs_lock_unit
from repro.objects.qlock import qlock_unit
from repro.objects.shared_queue import certify_shared_queue, shared_queue_unit
from repro.objects.sched import CpuMap
from repro.objects.ticket_lock import certify_ticket_lock, ticket_lock_unit
from repro.verify import c_source_lines, module_loc, table2_paper_rows


def gather_stats():
    """Certify every Table 2 object and collect the effort numbers."""
    paper = table2_paper_rows()
    stats = {}

    ticket = certify_ticket_lock([1, 2], lock="q0")
    stats["Ticket lock"] = {
        "src": c_source_lines(ticket_lock_unit()),
        "module_loc": module_loc("objects/ticket_lock.py"),
        "obligations": ticket.composed.certificate.obligation_count(),
    }
    mcs = certify_mcs_lock([1, 2], lock="q0")
    stats["MCS lock"] = {
        "src": c_source_lines(mcs_lock_unit()),
        "module_loc": module_loc("objects/mcs_lock.py"),
        "obligations": mcs.composed.certificate.obligation_count(),
    }
    from repro.objects.local_queue import local_queue_unit

    stats["Local queue"] = {
        "src": c_source_lines(local_queue_unit()),
        "module_loc": module_loc("objects/local_queue.py"),
        "obligations": 0,  # sequential layer: checked by property tests
    }
    queue = certify_shared_queue([1, 2], queue="rdq")
    stats["Shared queue"] = {
        # Only the lock-wrapping functions are new code (§4.2 reuse).
        "src": c_source_lines(shared_queue_unit())
        - c_source_lines(local_queue_unit()),
        "module_loc": module_loc("objects/shared_queue.py"),
        "obligations": queue["composed"].certificate.obligation_count(),
    }
    from repro.objects.qlock import check_qlock_correctness

    qlock_cert = check_qlock_correctness(
        CpuMap({1: 0, 2: 0, 3: 0}), {0: 1}, lock=5
    )
    stats["Queuing lock"] = {
        "src": c_source_lines(qlock_unit()),
        "module_loc": module_loc("objects/qlock.py"),
        "obligations": qlock_cert.obligation_count(),
    }
    stats["Scheduler"] = {
        "src": 0,  # scheduling primitives are specs + asm cswitch
        "module_loc": module_loc("objects/sched.py"),
        "obligations": 0,
    }
    return paper, stats


def test_table2_object_statistics(benchmark):
    paper, stats = benchmark(gather_stats)
    rows = []
    for name in ("Ticket lock", "MCS lock", "Local queue", "Shared queue",
                 "Scheduler", "Queuing lock"):
        p = paper[name]
        s = stats[name]
        rows.append([
            name, p["source"], s["src"],
            p["spec"] + p["invariant"] + p["sim_proof"], s["module_loc"],
            s["obligations"],
        ])
    print_table(
        "Table 2 — certified objects "
        "(paper: Coq LOC; ours: mini-C stmts / module LOC / obligations)",
        ["object", "paper src", "our src", "paper proofs", "our module",
         "obligations"],
        rows,
    )
    # Shape 1: MCS source is substantially larger than ticket source
    # (paper: 287 vs 74).
    assert stats["MCS lock"]["src"] > stats["Ticket lock"]["src"]
    # Shape 2: the shared queue's *new* code is tiny compared to either
    # lock (paper: 20 vs 74/287) — the reuse story.
    assert stats["Shared queue"]["src"] < stats["Ticket lock"]["src"]
    assert stats["Shared queue"]["src"] < stats["MCS lock"]["src"]
    # Shape 3: the queuing lock implementation is small relative to the
    # spin locks' verification artifacts (paper: 328 code-proof vs
    # 1173/1899).
    assert stats["Queuing lock"]["module_loc"] < stats["Ticket lock"]["module_loc"]


def test_lock_certification_cost(benchmark):
    """Wall-clock cost of a full Fig. 5 lock derivation (the Table 2
    'how much work is a lock' datum, measured instead of counted)."""
    stack = benchmark(lambda: certify_ticket_lock([1, 2], lock="q0"))
    assert stack.composed.certificate.ok
