"""repro.serve throughput/latency: cold batch, warm batch, dedup storm.

Boots a real daemon (1 persistent worker, ephemeral port) and measures
the three service regimes end to end over HTTP:

* **cold batch** — distinct jobs, every one a real verification on the
  pre-forked pool; throughput is bounded by engine speed.
* **warm batch** — the same jobs resubmitted; every one is served from
  the content-addressed store without touching a worker.  This is the
  regime a CI fleet lives in, and the daemon's whole reason to exist:
  the batch must come back more than 10× faster than the cold run, with
  server-side p50 in single-digit milliseconds.
* **dedup storm** — many identical submissions of a job nobody has run
  before, all in one batch.  In-flight dedup must collapse the storm to
  exactly one verification.

Shape assertions only; wall times land in ``BENCH_serve_throughput.json``
and the committed baseline gates regressions in CI.
"""

from __future__ import annotations

import shutil
import signal
import time

from conftest import print_table, record_bench, scratch_path

COLD_BATCH = [
    {"stack": "ticket", "params": {"domain": [1, 2], "fuel": 2000 + i}}
    for i in range(4)
] + [
    {"stack": "mcs", "params": {"domain": [1, 2]}},
    {"stack": "queue", "params": {"domain": [1, 2]}},
]

STORM_COPIES = 16
STORM_JOB = {"stack": "ticket", "params": {"domain": [1, 2], "fuel": 2999}}


def test_serve_throughput(benchmark):
    from repro.serve.smoke import boot_daemon

    spool = scratch_path("serve-bench-spool")
    shutil.rmtree(spool, ignore_errors=True)
    process, client = boot_daemon(str(spool))

    def wait_all(docs):
        return [client.job(doc["id"], wait=True) for doc in docs]

    try:
        def all_regimes():
            out = {}
            start = time.perf_counter()
            cold = wait_all(client.submit_batch(list(COLD_BATCH)))
            out["cold_s"] = time.perf_counter() - start
            assert all(d["state"] == "done" and d["ok"] for d in cold)

            start = time.perf_counter()
            warm = wait_all(client.submit_batch(list(COLD_BATCH)))
            out["warm_s"] = time.perf_counter() - start
            assert all(d["source"] == "store" for d in warm)

            verified_before = client.metrics()["latency"]["cold"]["count"]
            start = time.perf_counter()
            storm = wait_all(
                client.submit_batch([dict(STORM_JOB)] * STORM_COPIES)
            )
            out["storm_s"] = time.perf_counter() - start
            assert all(d["state"] == "done" for d in storm)
            out["storm_verifications"] = (
                client.metrics()["latency"]["cold"]["count"] - verified_before
            )
            out["metrics"] = client.metrics()
            return out

        measured = benchmark.pedantic(all_regimes, rounds=1, iterations=1)
    finally:
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=60)

    n = len(COLD_BATCH)
    cold_s, warm_s = measured["cold_s"], measured["warm_s"]
    storm_s = measured["storm_s"]
    metrics = measured["metrics"]
    warm_p50_ms = metrics["latency"]["warm"]["p50_ms"]
    rows = [
        ["cold batch", n, f"{cold_s * 1000:.1f} ms", f"{n / cold_s:.1f}"],
        ["warm batch", n, f"{warm_s * 1000:.1f} ms", f"{n / warm_s:.1f}"],
        ["dedup storm", STORM_COPIES, f"{storm_s * 1000:.1f} ms",
         f"{STORM_COPIES / storm_s:.1f}"],
    ]
    record_bench(
        regimes={
            "cold": {"jobs": n, "seconds": round(cold_s, 6)},
            "warm": {"jobs": n, "seconds": round(warm_s, 6)},
            "storm": {"jobs": STORM_COPIES, "seconds": round(storm_s, 6),
                      "verifications": measured["storm_verifications"]},
        },
        warm_p50_ms=warm_p50_ms,
        cache=metrics["cache"]["hits"],
        workers=metrics["workers"]["configured"],
    )
    print_table(
        "repro.serve throughput (1 worker, HTTP round-trips included)",
        ["regime", "jobs", "wall", "jobs/s"],
        rows,
    )
    # The store must beat re-verification by an order of magnitude...
    assert warm_s * 10 < cold_s, (
        f"warm batch not clearly faster: warm={warm_s:.3f}s cold={cold_s:.3f}s"
    )
    # ...with single-digit-ms server-side latency per served job.
    assert warm_p50_ms is not None and warm_p50_ms < 10.0, (
        f"warm p50 {warm_p50_ms} ms above single-digit budget"
    )
    # The storm collapsed to one verification: in-flight dedup worked.
    assert measured["storm_verifications"] == 1, measured["storm_verifications"]
