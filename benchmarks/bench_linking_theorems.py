"""Theorems 3.1 and 5.1: the linking theorems' coverage and cost.

* **Multicore linking (Thm 3.1)** — ``[[P]]_{Mx86} ⊑ [[P]]_{Lx86[D]}``:
  fine-grained hardware interleavings versus query-point interleavings.
  The table reports how many distinct schedules each side explores — the
  abstraction's whole point is that the layer machine needs far fewer.

* **Multithreaded linking (Thm 5.1)** — ``Lbtd[c] ≤ Lhtd[c][Tc]``:
  queue-level scheduling versus atomic scheduling events, for growing
  thread counts on one CPU.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.core import enumerate_game_logs, seq_player
from repro.core.events import YIELD
from repro.machine import check_multicore_linking, lx86_interface, mx86_behaviors
from repro.objects.sched import CpuMap
from repro.threads import build_lbtd, build_lhtd, check_multithreaded_linking


def test_multicore_linking_coverage(benchmark):
    iface = lx86_interface([1, 2])
    client = {1: [("fai", (("c", 0),))], 2: [("fai", (("c", 0),))]}
    players = {tid: (seq_player(calls), ()) for tid, calls in client.items()}

    def run_both():
        hw = mx86_behaviors(iface, players, max_rounds=16)
        layer = enumerate_game_logs(iface, players, max_rounds=16)
        return hw, layer

    hw, layer = benchmark(run_both)
    cert = check_multicore_linking(iface, [client], max_rounds=16)
    print_table(
        "Thm 3.1 — interleaving coverage",
        ["machine", "schedules explored", "distinct logs"],
        [
            ["Mx86 (fine-grained)", len(hw),
             len({r.log.without_sched() for r in hw if r.ok})],
            ["Lx86[D] (query points)", len(layer),
             len({r.log.without_sched() for r in layer if r.ok})],
        ],
    )
    assert cert.ok
    # Shape: the abstraction collapses schedules without losing logs.
    hw_logs = {r.log.without_sched() for r in hw if r.ok}
    layer_logs = {r.log.without_sched() for r in layer if r.ok}
    assert hw_logs <= layer_logs
    assert len(hw) >= len(layer)


def yielder(n):
    def player(ctx):
        for _ in range(n):
            yield from ctx.call(YIELD)
        return "done"

    return player


def test_multithreaded_linking_scaling(benchmark):
    rows = []
    certs = []
    for nthreads in (2, 3, 4):
        cpus = CpuMap({tid: 0 for tid in range(1, nthreads + 1)})
        init = {0: 1}
        lbtd = build_lbtd(cpus, init)
        lhtd = build_lhtd(cpus, init)
        players = {tid: (yielder(2), ()) for tid in range(1, nthreads + 1)}
        import time

        start = time.perf_counter()
        cert = check_multithreaded_linking(
            lbtd, lhtd, cpus, init, [players], require_completeness=True
        )
        elapsed = time.perf_counter() - start
        certs.append(cert)
        rows.append([nthreads, cert.obligation_count(),
                     f"{elapsed * 1000:.1f} ms"])

    cpus = CpuMap({1: 0, 2: 0})
    init = {0: 1}
    lbtd, lhtd = build_lbtd(cpus, init), build_lhtd(cpus, init)
    players = {1: (yielder(2), ()), 2: (yielder(2), ())}
    benchmark(
        check_multithreaded_linking,
        lbtd, lhtd, cpus, init, [players],
    )
    print_table(
        "Thm 5.1 — multithreaded linking vs thread count (1 CPU)",
        ["threads", "obligations", "time"],
        rows,
    )
    assert all(cert.ok for cert in certs)
