"""§6 Performance Evaluation: ticket-lock latency, 87 → 35 cycles.

"Initially, the ticket lock implementation incurred a latency of 87 CPU
cycles in the single core case.  After a short investigation, we found
that we forgot to remove some function calls to 'logical primitives'
used for manipulating ghost abstract states.  After we removed these
extra null calls, the latency dropped down to only 35 CPU cycles."

The reproduction: the compiled (mini-x86) ticket lock runs uncontended
on the simulated machine under its cycle-cost model.  The "before"
variant keeps calls to logical primitives (ghost no-ops that manipulate
only specification state but still pay call overhead); the "after"
variant erases them.  The shape to reproduce: erasing ghost calls cuts
the acquire+release latency by roughly 2–3×.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.asm import AsmUnit, Imm, PrimCall, Push
from repro.asm.semantics import asm_player
from repro.compiler import compile_unit
from repro.core import ghost_prim, run_local
from repro.machine import lx86_interface
from repro.objects.ticket_lock import ticket_lock_unit

PAPER_BEFORE = 87
PAPER_AFTER = 35
GHOST_CALL_COST = 13  # cycles per leftover logical-primitive call
GHOST_CALLS_PER_OP = 2  # per acquire and per release


def build_units():
    """The compiled lock, with and without leftover logical primitives."""
    c_unit = ticket_lock_unit()
    clean = compile_unit(c_unit)

    ghosted = AsmUnit("ticket_lock_ghosted")
    for name, fn in clean.functions.items():
        body = []
        for instr in fn.body:
            if isinstance(instr, PrimCall) and instr.prim in ("fai", "pull", "push"):
                # The forgotten ghost-state updates next to each real
                # shared operation (the paper's "extra null calls").
                # Inserted *before* the real call so the real return
                # value in EAX is not clobbered.
                body.append(Push(Imm(0)))
                body.append(PrimCall("log_ghost", 1))
            body.append(instr)
        from repro.asm import AsmFunction

        ghosted.add(AsmFunction(name, fn.params, body, fn.frame_size))
    return clean, ghosted


def measure(unit, iface):
    """Uncontended acquire+release latency in simulated cycles."""

    def once(ctx):
        yield from asm_player(unit, "acq")(ctx, "L")
        yield from asm_player(unit, "rel")(ctx, "L")
        return None

    run = run_local(iface, 1, once, fuel=20_000)
    assert run.ok, run.stuck
    return run.cycles


def test_lock_latency_ghost_erasure(benchmark):
    clean, ghosted = build_units()
    iface = lx86_interface([1]).extend(
        "Lx86+ghost", [ghost_prim("log_ghost", cycle_cost=GHOST_CALL_COST)]
    )

    before = measure(ghosted, iface)
    after = measure(clean, iface)
    benchmark(lambda: measure(clean, iface))

    paper_ratio = PAPER_BEFORE / PAPER_AFTER
    our_ratio = before / after
    print_table(
        "§6 ticket-lock latency (single core, acquire+release)",
        ["variant", "paper (cycles)", "measured (sim cycles)"],
        [
            ["with logical primitives", PAPER_BEFORE, before],
            ["logical primitives erased", PAPER_AFTER, after],
            ["ratio", f"{paper_ratio:.2f}x", f"{our_ratio:.2f}x"],
        ],
    )
    # Shape: erasing ghost calls is a big constant-factor win.
    assert after < before
    assert 1.5 <= our_ratio <= 4.0, f"ratio {our_ratio:.2f} out of shape"


def test_lock_latency_scales_with_ghost_cost(benchmark):
    """Ablation: latency is linear in the ghost-call cost — the paper's
    52-cycle gap is purely call overhead."""
    clean, ghosted = build_units()
    rows = []
    for cost in (0, 5, 13, 25):
        iface = lx86_interface([1]).extend(
            "Lx86+g", [ghost_prim("log_ghost", cycle_cost=cost)]
        )
        rows.append([cost, measure(ghosted, iface)])
    benchmark(lambda: measure(ghosted, lx86_interface([1]).extend(
        "Lx86+g", [ghost_prim("log_ghost", cycle_cost=13)]
    )))
    print_table(
        "ablation: ghost-call cost vs latency",
        ["ghost cycle cost", "latency (sim cycles)"],
        rows,
    )
    latencies = [latency for _cost, latency in rows]
    assert latencies == sorted(latencies)
    # Linearity: equal cost increments give equal latency increments.
    deltas = [b - a for a, b in zip(latencies, latencies[1:])]
    assert deltas[1] / max(deltas[0], 1) == pytest.approx(
        (13 - 5) / 5, rel=0.5
    )
