"""Table 1: lines of proof per toolkit component.

The paper quantifies the Coq development per component (auxiliary
library, C/Asm verifiers, simulation library, multilayer/multithread/
multicore linking, thread-safe CompCertX).  The reproduction's analog:
the Python LOC implementing each component, printed next to the paper's
Coq LOC, plus a throughput benchmark of the toolkit's hot path (the
strategy-simulation checker discharging obligations).
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.core import (
    Event,
    ID_REL,
    LayerInterface,
    SimConfig,
    check_sim,
    prim_player,
    shared_prim,
)
from repro.verify import table1_inventory


def test_table1_component_inventory(benchmark):
    rows = benchmark(table1_inventory)
    printable = [
        [row["component"], row["paper_coq_loc"], row["repro_py_loc"]]
        for row in rows
    ]
    paper_total = sum(row["paper_coq_loc"] for row in rows)
    ours_total = sum(row["repro_py_loc"] for row in rows)
    printable.append(["TOTAL", paper_total, ours_total])
    print_table(
        "Table 1 — toolkit components (paper: Coq LOC; ours: Python LOC)",
        ["component", "paper", "repro"],
        printable,
    )
    # Shape: all eight components exist and are substantive; linking
    # machinery dominates the verifiers, as in the paper.
    assert len(rows) == 8
    assert all(row["repro_py_loc"] > 100 for row in rows)
    by_name = {row["component"]: row["repro_py_loc"] for row in rows}
    assert by_name["Multicore linking"] > by_name["Asm verifier"]
    assert by_name["Multithread linking"] > by_name["Asm verifier"]


def _bump_interface():
    def bump_spec(ctx):
        yield from ctx.query()
        count = ctx.log.count("bump") + 1
        ctx.emit("bump", ret=count)
        return count

    return LayerInterface(
        "Cnt", [1, 2], {"bump": shared_prim("bump", bump_spec)}
    )


def test_simulation_checker_throughput(benchmark):
    """Obligations discharged per second by the Def. 2.1 checker —
    the toolkit's hot path (all Table 2 artifacts flow through it)."""
    iface = _bump_interface()
    config = SimConfig(
        env_alphabet=[(), (Event(2, "bump"),)], env_depth=3
    )

    def run_check():
        return check_sim(
            iface, prim_player("bump"), iface, prim_player("bump"),
            ID_REL, 1, config, judgment="bump ≤ bump",
        )

    cert = benchmark(run_check)
    assert cert.ok
    print(f"\nobligations per invocation: {cert.obligation_count()}")
    assert cert.obligation_count() >= 4
