"""Fig. 9: the layer calculus — rule-application cost at scale.

The calculus is exercised functionally throughout the test suite; this
bench measures how the composition rules scale when stacking many layers
(the CertiKOS development stacks dozens): an N-deep tower built by
``Fun`` + ``Vcomp``, an N-wide row by ``Hcomp``, and an N-way ``Pcomp``.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.core import (
    Event,
    EventMapRel,
    FuncImpl,
    LayerInterface,
    SimConfig,
    fun_rule,
    hcomp,
    pcomp_all,
    shared_prim,
    vcomp,
)

DEPTH = 6
WIDTH = 6
CPUS = 4


def make_bump_spec(name):
    def spec(ctx):
        yield from ctx.query()
        count = ctx.log.count(name) + 1
        ctx.emit(name, ret=count)
        return count

    return spec


def pair_spec(low_name):
    def spec(ctx):
        yield from ctx.query()
        count = ctx.log.count(low_name)
        ctx.emit(low_name, ret=count + 1)
        ctx.emit(low_name, ret=count + 2)
        return None

    return spec


def pair_impl(low_name):
    def player(ctx):
        yield from ctx.call(low_name)
        ctx.enter_critical()
        yield from ctx.call(low_name)
        ctx.exit_critical()
        return None

    return player


def build_tower(depth):
    """depth layers, each doubling the one below (Fun then Vcomp)."""
    base = LayerInterface(
        "T0", [1], {"op0": shared_prim("op0", make_bump_spec("op0"))}
    )
    current = base
    tower = None
    relation = EventMapRel("Rt", ret_rel=lambda lo, hi: True)
    config = SimConfig(env_alphabet=[()], env_depth=0, compare_rets=False)
    for level in range(1, depth + 1):
        low_name = f"op{level - 1}"
        high_name = f"op{level}"

        def high_spec(ctx, _expansion=2 ** level):
            # Each level-k op expands to two level-(k-1) ops; at the
            # bottom everything is op0 events with consistent returns.
            # (expansion bound at definition time: closures in loops!)
            yield from ctx.query()
            count = ctx.log.count("op0")
            for step in range(_expansion):
                ctx.emit("op0", ret=count + step + 1)
            return None

        overlay = current.extend(
            f"T{level}", [shared_prim(high_name, high_spec)], hide=[low_name]
        )

        def impl(ctx, _n=low_name):
            yield from ctx.call(_n)
            ctx.enter_critical()
            yield from ctx.call(_n)
            ctx.exit_critical()
            return None

        layer = fun_rule(
            current, FuncImpl(high_name, impl), overlay, relation, 1, config
        )
        tower = layer if tower is None else vcomp(tower, layer)
        current = overlay
    return tower


def test_vcomp_tower(benchmark):
    tower = benchmark(build_tower, DEPTH)
    assert tower.certificate.ok
    assert len(tower.module) == DEPTH
    print(f"\ntower of {DEPTH} layers: "
          f"{tower.certificate.obligation_count()} obligations, "
          f"relation {tower.relation.name}")


def build_row(width):
    base = LayerInterface(
        "B", [1], {"op": shared_prim("op", make_bump_spec("op"))}
    )
    relation = EventMapRel("Rr", ret_rel=lambda lo, hi: True)
    config = SimConfig(env_alphabet=[()], env_depth=0, compare_rets=False)
    layers = []
    for index in range(width):
        name = f"svc{index}"

        def spec(ctx):
            yield from ctx.query()
            count = ctx.log.count("op")
            ctx.emit("op", ret=count + 1)
            return None

        overlay = base.extend(f"B+{name}", [shared_prim(name, spec)])

        def impl(ctx):
            yield from ctx.call("op")
            return None

        layers.append(
            fun_rule(base, FuncImpl(name, impl), overlay, relation, 1, config)
        )
    row = layers[0]
    for layer in layers[1:]:
        row = hcomp(layer, row)
    return row


def test_hcomp_row(benchmark):
    row = benchmark(build_row, WIDTH)
    assert row.certificate.ok
    assert len(row.module) == WIDTH


def build_fleet(cpus):
    domain = list(range(1, cpus + 1))
    base = LayerInterface(
        "P", domain, {"op": shared_prim("op", make_bump_spec("op"))}
    )
    relation = EventMapRel("Rp", ret_rel=lambda lo, hi: True)

    def spec(ctx):
        yield from ctx.query()
        count = ctx.log.count("op")
        ctx.emit("op", ret=count + 1)
        return None

    overlay = base.extend("P1", [shared_prim("svc", spec)], hide=["op"])

    def impl(ctx):
        yield from ctx.call("op")
        return None

    impl_obj = FuncImpl("svc", impl)
    layers = []
    for tid in domain:
        env_tids = [t for t in domain if t != tid]
        alphabet = [()] + [((Event(t, "op"),)) for t in env_tids]
        config = SimConfig(env_alphabet=alphabet, env_depth=1,
                           compare_rets=False)
        layers.append(fun_rule(base, impl_obj, overlay, relation, tid, config))
    return pcomp_all(layers)


def test_pcomp_fleet(benchmark):
    fleet = benchmark(build_fleet, CPUS)
    assert fleet.certificate.ok
    assert fleet.focused == set(range(1, CPUS + 1))
    print(f"\n{CPUS}-way Pcomp: "
          f"{fleet.certificate.obligation_count()} obligations")
