"""Lint pre-pass overhead on the cold Fig. 5 lock derivation.

ISSUE 5 budget: the static analysis pass (``REPRO_LINT=record``, the
default) must add less than 5% to a cold pipeline run.  The derivation
here is the ticket-lock stage of the Fig. 5 pipeline — fun-lift,
log-lift, Wk, and Pcomp — run uncached, timed as min-of-N under each
lint mode.  Strict mode is reported for visibility but not gated: it
does the same analysis work, so any spread beyond ``record`` is timer
noise.
"""

from __future__ import annotations

import os
import time

from conftest import print_table, record_bench
from repro.objects.ticket_lock import certify_ticket_lock

ROUNDS = 3
OVERHEAD_BUDGET = 0.05  # <5% for the default (record) mode


def _timed_derivation(mode: str, rounds: int = ROUNDS) -> float:
    previous = os.environ.get("REPRO_LINT")
    os.environ["REPRO_LINT"] = mode
    try:
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            stack = certify_ticket_lock([1, 2], lock="q0")
            best = min(best, time.perf_counter() - started)
            assert stack.composed.certificate.ok
        return best
    finally:
        if previous is None:
            del os.environ["REPRO_LINT"]
        else:
            os.environ["REPRO_LINT"] = previous


def test_lint_overhead(benchmark):
    baseline = _timed_derivation("off")
    record = benchmark.pedantic(
        lambda: _timed_derivation("record"), rounds=1, iterations=1
    )
    strict = _timed_derivation("strict")

    overhead = (record - baseline) / baseline
    rows = [
        ["off (no analysis)", f"{baseline * 1000:.1f} ms", "—"],
        ["record (default)", f"{record * 1000:.1f} ms",
         f"{overhead * 100:+.2f}%"],
        ["strict", f"{strict * 1000:.1f} ms",
         f"{(strict - baseline) / baseline * 100:+.2f}%"],
    ]
    record_bench(
        lint_off_s=round(baseline, 6),
        lint_record_s=round(record, 6),
        lint_strict_s=round(strict, 6),
        record_overhead=round(overhead, 4),
        budget=OVERHEAD_BUDGET,
    )
    print_table(
        "Lint pre-pass overhead — cold ticket-lock derivation "
        f"(min of {ROUNDS})",
        ["mode", "time", "overhead"],
        rows,
    )
    assert overhead < OVERHEAD_BUDGET, (
        f"lint pre-pass adds {overhead * 100:.2f}% "
        f"(budget {OVERHEAD_BUDGET * 100:.0f}%)"
    )
