"""Parallel obligation checking + certificate cache: scaling study.

Runs the Fig. 5 lock pipeline (the engine's hottest end-to-end path)
under four configurations:

* ``serial cold``   — ``jobs=1``, cache off (the reference run)
* ``jobs=2 cold``   — two worker processes, cache off
* ``jobs=4 cold``   — four worker processes, cache off
* ``warm cache``    — ``jobs=1``, second run against a populated
  content-addressed certificate cache (the CompCertX
  separate-compilation analogue: unchanged inputs are not re-verified)

Besides wall times and speedups, the benchmark asserts the engine's
determinism contract: the soundness certificate's ``to_json()`` is
byte-identical across all four configurations (observability off).

Honesty note: parallel speedup depends on the runner's CPU count
(recorded in the JSON as ``cpus``); on a single-core container the
worker runs merely must not diverge, while the warm-cache run must win
regardless of core count.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from conftest import print_table, record_bench
from bench_fig5_pipeline import run_pipeline


def _run_once(jobs: int, cache_dir: str | None):
    """One pipeline run under explicit jobs/cache env; returns (s, cert)."""
    old_jobs = os.environ.get("REPRO_JOBS")
    old_cache = os.environ.get("REPRO_CACHE_DIR")
    try:
        os.environ["REPRO_JOBS"] = str(jobs)
        if cache_dir is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = cache_dir
        start = time.perf_counter()
        _stages, _stack, _queue, _compile_cert, soundness = run_pipeline()
        return time.perf_counter() - start, soundness
    finally:
        for key, value in (("REPRO_JOBS", old_jobs), ("REPRO_CACHE_DIR", old_cache)):
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _cert_bytes(cert) -> bytes:
    return json.dumps(cert.to_json(), sort_keys=True, ensure_ascii=False).encode()


def test_parallel_scaling(benchmark):
    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        def all_phases():
            phases = []
            phases.append(("serial cold", *_run_once(jobs=1, cache_dir=None)))
            phases.append(("jobs=2 cold", *_run_once(jobs=2, cache_dir=None)))
            phases.append(("jobs=4 cold", *_run_once(jobs=4, cache_dir=None)))
            # Populate the cache, then measure the warm rerun.
            _run_once(jobs=1, cache_dir=cache_dir)
            phases.append(("warm cache", *_run_once(jobs=1, cache_dir=cache_dir)))
            return phases

        phases = benchmark.pedantic(all_phases, rounds=1, iterations=1)

    serial_s = phases[0][1]
    reference = _cert_bytes(phases[0][2])
    rows = []
    results = []
    for label, seconds, cert in phases:
        speedup = serial_s / seconds if seconds > 0 else float("inf")
        rows.append([label, f"{seconds * 1000:.1f} ms", f"{speedup:.2f}x"])
        results.append(
            {"phase": label, "seconds": round(seconds, 6),
             "speedup": round(speedup, 3)}
        )
        assert _cert_bytes(cert) == reference, (
            f"{label}: certificate diverged from serial cold run"
        )
    from repro.obs.store import certificate_digest

    record_bench(
        phases=results,
        cpus=os.cpu_count(),
        # One digest for all phases — the byte-identity assertion above
        # already proved serial/parallel/cached certs agree.
        certificate=certificate_digest(phases[0][2]),
    )
    print_table(
        "Parallel obligation checking + certificate cache (Fig. 5 pipeline)",
        ["configuration", "time", "speedup vs serial"],
        rows,
    )
    warm = results[-1]
    assert warm["phase"] == "warm cache"
    # The cache must make the rerun clearly cheaper than re-verification;
    # parallel speedup is core-count-dependent and only *recorded*.
    assert warm["speedup"] > 2.0, f"warm-cache rerun too slow: {warm}"
