"""Parallel obligation checking + certificate cache: scaling study.

Runs the Fig. 5 lock pipeline (the engine's hottest end-to-end path)
under four configurations:

* ``serial cold``     — ``jobs=1``, cache off (the reference run)
* ``env jobs=2``      — ``REPRO_JOBS=2``, cache off.  The environment
  request is a *cap*, clamped to the hardware budget
  (:func:`repro.parallel.cpu_budget`): on a single-core runner the
  engine keeps the run serial instead of paying fork overhead for
  cores that do not exist, so this leg must never lose to serial.
* ``forced jobs=2``   — ``REPRO_JOBS=2`` with ``REPRO_JOBS_FORCE=1``:
  real fork-batch workers regardless of core count.  This measures the
  true process-boundary cost of the snapshot-fork engine (work-stealing
  chunks, batched result shipping); its speedup is core-count-dependent
  and only recorded.
* ``warm cache``      — ``jobs=1``, second run against a populated
  content-addressed certificate cache (the CompCertX
  separate-compilation analogue: unchanged inputs are not re-verified)

Besides wall times and speedups, the benchmark asserts the engine's
determinism contract: the soundness certificate's ``to_json()`` is
byte-identical across all four configurations (observability off).

Honesty note: ``cpus`` records the hardware budget actually visible to
the run (affinity-aware), and each phase records the worker count the
pool resolved, so a baseline from a 1-core container cannot be misread
as a scaling claim.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from conftest import print_table, record_bench
from bench_fig5_pipeline import run_pipeline

from repro.parallel import cpu_budget, get_jobs


def _run_once(env_jobs: str | None, cache_dir: str | None, force: bool = False):
    """One pipeline run under explicit env; returns (seconds, cert, workers)."""
    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_JOBS", "REPRO_JOBS_FORCE", "REPRO_CACHE_DIR")
    }
    try:
        if env_jobs is None:
            os.environ.pop("REPRO_JOBS", None)
        else:
            os.environ["REPRO_JOBS"] = env_jobs
        if force:
            os.environ["REPRO_JOBS_FORCE"] = "1"
        else:
            os.environ.pop("REPRO_JOBS_FORCE", None)
        if cache_dir is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = cache_dir
        workers = get_jobs()
        start = time.perf_counter()
        _stages, _stack, _queue, _compile_cert, soundness = run_pipeline()
        return time.perf_counter() - start, soundness, workers
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _cert_bytes(cert) -> bytes:
    return json.dumps(cert.to_json(), sort_keys=True, ensure_ascii=False).encode()


def test_parallel_scaling(benchmark):
    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        def all_phases():
            phases = []
            phases.append(("serial cold", *_run_once(None, None)))
            phases.append(("env jobs=2 (clamped)", *_run_once("2", None)))
            phases.append(("forced jobs=2", *_run_once("2", None, force=True)))
            # Populate the cache, then measure the warm rerun.
            _run_once(None, cache_dir)
            phases.append(("warm cache", *_run_once(None, cache_dir)))
            return phases

        phases = benchmark.pedantic(all_phases, rounds=1, iterations=1)

    serial_s = phases[0][1]
    reference = _cert_bytes(phases[0][2])
    rows = []
    results = []
    for label, seconds, cert, workers in phases:
        speedup = serial_s / seconds if seconds > 0 else float("inf")
        rows.append(
            [label, f"{seconds * 1000:.1f} ms", f"{speedup:.2f}x", workers]
        )
        results.append(
            {"phase": label, "seconds": round(seconds, 6),
             "speedup": round(speedup, 3), "workers": workers}
        )
        assert _cert_bytes(cert) == reference, (
            f"{label}: certificate diverged from serial cold run"
        )
    from repro.obs.store import certificate_digest

    record_bench(
        phases=results,
        cpus=cpu_budget(),
        cpus_reported=os.cpu_count(),
        # One digest for all phases — the byte-identity assertion above
        # already proved serial/parallel/cached certs agree.
        certificate=certificate_digest(phases[0][2]),
    )
    print_table(
        "Parallel obligation checking + certificate cache (Fig. 5 pipeline)",
        ["configuration", "time", "speedup vs serial", "workers"],
        rows,
    )
    clamped = results[1]
    assert clamped["phase"] == "env jobs=2 (clamped)"
    # The hardware-aware clamp means an env jobs request can never make
    # a run *lose* to serial: on a 1-core box the leg degrades to the
    # serial path (workers=1), on a multi-core box real workers win.
    # 0.9 rather than 1.0 leaves room for timer noise between two runs
    # of identical code.
    assert clamped["speedup"] > 0.9, f"clamped env run lost to serial: {clamped}"
    warm = results[-1]
    assert warm["phase"] == "warm cache"
    # The cache must make the rerun clearly cheaper than re-verification;
    # parallel speedup is core-count-dependent and only *recorded*.
    assert warm["speedup"] > 2.0, f"warm-cache rerun too slow: {warm}"
