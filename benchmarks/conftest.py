"""Shared helpers for the paper-reproduction benchmarks.

Every file in this directory regenerates one table or figure of the
paper's evaluation (see DESIGN.md §3 and EXPERIMENTS.md).  Benchmarks
print a paper-vs-measured table and assert the *shape* of the result
(who wins, by roughly what factor) rather than absolute numbers.

Besides the human-readable tables, every benchmark run emits a
machine-readable record: ``benchmarks/results/BENCH_<name>.json`` (one
file per ``bench_<name>.py`` module) holding each test's outcome, its
call-phase wall time, and every table it printed through
:func:`print_table`.  Downstream tooling (CI trend lines, EXPERIMENTS.md
regeneration) reads these instead of scraping stdout.

Layout discipline: only ``results/baseline/`` is committed.  The
``BENCH_*.json`` records land in ``results/`` (ignored), and every
other artifact a benchmark generates — heartbeat streams, flamegraph
exports, trace dumps — must go through :func:`scratch_path`, which
resolves into the ignored ``results/scratch/`` directory.  When a run
ledger is armed (``REPRO_LEDGER``), the session's bench records are
also ingested as ledger runs, feeding the cross-run ``trends`` /
``regress`` machinery.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
SCRATCH_DIR = RESULTS_DIR / "scratch"


def scratch_path(name: str) -> Path:
    """A path under the ignored scratch dir for generated artifacts.

    All benchmark side-artifacts (heartbeat streams, collapsed stacks,
    speedscope profiles) write through this helper so nothing but
    ``BENCH_*.json`` ever lands at the top of ``results/``.
    """
    SCRATCH_DIR.mkdir(parents=True, exist_ok=True)
    return SCRATCH_DIR / name

#: nodeid → record; populated by the hooks below, flushed at session end.
_RECORDS: Dict[str, Dict[str, Any]] = {}
_CURRENT = {"nodeid": None}


def _record_for(nodeid: str) -> Dict[str, Any]:
    return _RECORDS.setdefault(
        nodeid, {"nodeid": nodeid, "tables": [], "extra": {}}
    )


def record_bench(**fields: Any) -> None:
    """Attach structured data to the currently-running benchmark test.

    Benchmarks call this for anything worth keeping that does not fit a
    printed table (per-stage timings, certificate obligation counts,
    trace-export paths).  The fields land under ``"extra"`` in the
    test's entry of ``BENCH_<name>.json``.
    """
    nodeid = _CURRENT["nodeid"]
    if nodeid is None:
        return
    _record_for(nodeid)["extra"].update(fields)


def print_table(title, headers, rows):
    """Render a small aligned table to the benchmark output.

    The table is also captured verbatim into the module's
    ``BENCH_<name>.json`` record.
    """
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    if _CURRENT["nodeid"] is not None:
        _record_for(_CURRENT["nodeid"])["tables"].append(
            {
                "title": title,
                "headers": [str(h) for h in headers],
                "rows": [[_jsonable(cell) for cell in row] for row in rows],
            }
        )


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _module_key(nodeid: str) -> str:
    # "bench_fig5_pipeline.py::test_x" → "fig5_pipeline"
    stem = Path(nodeid.split("::")[0]).stem
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def pytest_configure(config):
    # With REPRO_LEDGER set, repro.obs.store arms an automatic whole-
    # process capture at import.  For a bench session the per-module
    # records ingested at sessionfinish are the right granularity, so
    # the blanket capture is disarmed (without writing anything).
    if os.environ.get("REPRO_LEDGER", "").strip():
        try:
            from repro.obs.store import disable_ledger

            disable_ledger(flush=False)
        except ImportError:
            pass


def pytest_runtest_setup(item):
    _CURRENT["nodeid"] = item.nodeid
    _record_for(item.nodeid)


def pytest_runtest_teardown(item):
    if _CURRENT["nodeid"] == item.nodeid:
        _CURRENT["nodeid"] = None


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or item.nodeid not in _RECORDS:
        return
    rec = _RECORDS[item.nodeid]
    rec["outcome"] = report.outcome
    rec["duration_s"] = round(report.duration, 6)
    if report.failed:
        rec["failure"] = str(report.longrepr)[:2000]


def pytest_sessionfinish(session):
    # Only flush records for tests that actually ran (outcome present) —
    # a --collect-only session leaves _RECORDS empty.
    ran = {k: v for k, v in _RECORDS.items() if "outcome" in v}
    if not ran:
        return
    by_module: Dict[str, List[Dict[str, Any]]] = {}
    for nodeid, rec in ran.items():
        by_module.setdefault(_module_key(nodeid), []).append(rec)
    RESULTS_DIR.mkdir(exist_ok=True)
    payloads = []
    for name, records in sorted(by_module.items()):
        payload = {
            "schema": "repro.bench/v1",
            "module": f"bench_{name}.py",
            "tests": sorted(records, key=lambda r: r["nodeid"]),
        }
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, ensure_ascii=False))
        payloads.append(payload)
    _ingest_into_ledger(payloads)


def _ingest_into_ledger(payloads: List[Dict[str, Any]]) -> None:
    """Append this session's bench records to the armed run ledger.

    A no-op without ``REPRO_LEDGER``; best-effort with it (a broken
    ledger must never fail a benchmark session).
    """
    ledger_dir = os.environ.get("REPRO_LEDGER", "").strip()
    if not ledger_dir:
        return
    try:
        from repro.obs.store import ingest_bench
    except ImportError:
        return
    for payload in payloads:
        try:
            ingest_bench(ledger_dir, payload)
        except (OSError, ValueError):
            pass
