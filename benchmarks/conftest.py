"""Shared helpers for the paper-reproduction benchmarks.

Every file in this directory regenerates one table or figure of the
paper's evaluation (see DESIGN.md §3 and EXPERIMENTS.md).  Benchmarks
print a paper-vs-measured table and assert the *shape* of the result
(who wins, by roughly what factor) rather than absolute numbers.
"""

from __future__ import annotations

import pytest


def print_table(title, headers, rows):
    """Render a small aligned table to the benchmark output."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
