"""State-space profiler overhead on the cold ticket-lock derivation.

ISSUE 6 budget: the profiling tier must be free when off and cheap when
on.  Three modes over the same cold derivation (fun-lift, log-lift, Wk,
Pcomp — the Fig. 5 lock stage), interleaved min-of-N each so slow
machine drift cancels instead of landing on one mode:

* ``off`` — observability and profiling both off: the baseline.  Every
  profiler hook on this path is a single flag test, so this mode *is*
  the "profiling-off ≈ 0%" claim; the byte-identity tests
  (``tests/obs/test_profile.py``) pin the rest of it.
* ``obs`` — plain observability (spans, metrics, coverage, provenance):
  the pre-existing tier, reported for visibility, not gated here.
* ``profile`` — full profiling: redundancy accounting, obligation
  spans, heartbeat streaming to disk.  Gated at <10% over ``off``.

The last profiled round also leaves its artifacts in
``benchmarks/results/scratch/`` (heartbeat stream, collapsed stacks,
speedscope JSON — via :func:`conftest.scratch_path`, so they stay out
of the committed tree), which CI uploads from bench jobs.
"""

from __future__ import annotations

import time

from conftest import print_table, record_bench, scratch_path
from repro import obs
from repro.objects.ticket_lock import certify_ticket_lock

ROUNDS = 3
OVERHEAD_BUDGET = 0.10  # <10% for full profiling


def _derive() -> float:
    started = time.perf_counter()
    stack = certify_ticket_lock([1, 2], lock="q0")
    elapsed = time.perf_counter() - started
    assert stack.composed.certificate.ok
    return elapsed


def test_profile_overhead(benchmark):
    best = {"off": float("inf"), "obs": float("inf"), "profile": float("inf")}
    heartbeat_path = scratch_path("profile_ticket_lock.heartbeat.jsonl")

    def one_pass():
        obs.disable()
        obs.disable_profiling()
        best["off"] = min(best["off"], _derive())
        with obs.observing():
            best["obs"] = min(best["obs"], _derive())
        with obs.profiling():
            obs.start_heartbeat(str(heartbeat_path))
            best["profile"] = min(best["profile"], _derive())
            obs.stop_heartbeat()

    benchmark.pedantic(one_pass, rounds=ROUNDS, iterations=1)

    # The collector still holds the last profiled pass: export the
    # flamegraph artifacts CI uploads alongside the bench JSON.
    obs.write_collapsed(str(scratch_path("profile_ticket_lock.collapsed")))
    obs.write_speedscope(
        str(scratch_path("profile_ticket_lock.speedscope.json")),
        "ticket-lock derivation",
        obs.collector(),
    )
    redundancy = obs.profiler().redundancy_map()

    baseline = best["off"]
    overhead_obs = (best["obs"] - baseline) / baseline
    overhead_profile = (best["profile"] - baseline) / baseline
    rows = [
        ["off (baseline)", f"{baseline * 1000:.1f} ms", "—"],
        ["obs", f"{best['obs'] * 1000:.1f} ms",
         f"{overhead_obs * 100:+.2f}%"],
        ["profile (+heartbeat)", f"{best['profile'] * 1000:.1f} ms",
         f"{overhead_profile * 100:+.2f}%"],
    ]
    record_bench(
        profile_off_s=round(baseline, 6),
        obs_on_s=round(best["obs"], 6),
        profile_on_s=round(best["profile"], 6),
        profile_overhead=round(overhead_profile, 4),
        redundancy={
            axis: record.get("ratio")
            for axis, record in redundancy.items()
        },
    )
    print_table(
        "State-space profiler overhead — cold ticket-lock derivation "
        f"(interleaved min of {ROUNDS})",
        ["mode", "time", "overhead"],
        rows,
    )
    if redundancy:
        print_table(
            "Measured redundancy (profiled round)",
            ["axis", "explored", "distinct", "ratio"],
            [
                [axis, record.get("explored"), record.get("distinct"),
                 f"{record.get('ratio', 0.0):.1%}"]
                for axis, record in sorted(redundancy.items())
            ],
        )
    assert overhead_profile < OVERHEAD_BUDGET, (
        f"profiling adds {overhead_profile * 100:.2f}% "
        f"(budget {OVERHEAD_BUDGET * 100:.0f}%)"
    )
