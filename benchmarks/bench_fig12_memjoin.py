"""Fig. 12: the algebraic memory model at scale.

Join cost and axiom checking for N threads allocating many frames — the
§5.5 construction's substrate.  Scaling shape: join cost grows with the
total block count; the N-way generalization composes associatively.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.compiler import (
    Memory,
    check_join,
    join,
    join_all,
    rule_alloc,
    rule_comm,
    rule_ld,
    rule_lift_l,
    rule_lift_r,
    rule_nb,
    rule_st,
)

THREADS = 8
FRAMES_PER_THREAD = 32


def build_thread_memories(threads=THREADS, frames=FRAMES_PER_THREAD):
    """Round-robin frame allocation across N threads with placeholders."""
    memories = [Memory() for _ in range(threads)]
    for round_index in range(frames):
        for owner, memory in enumerate(memories):
            bid = memory.alloc(0, 16)
            memory.store(bid, 0, (owner, round_index))
            for other in memories:
                if other is not memory:
                    other.liftnb(1)
    return memories


def test_join_all_scales(benchmark):
    memories = build_thread_memories()
    merged = benchmark(join_all, memories)
    total = THREADS * FRAMES_PER_THREAD
    assert merged.nb() == total
    assert len(merged.owned_blocks()) == total
    print(f"\n{THREADS} threads × {FRAMES_PER_THREAD} frames → "
          f"{merged.nb()} blocks joined")


def test_pairwise_axioms_at_scale(benchmark):
    m1, m2 = build_thread_memories(threads=2, frames=64)

    def check_all_axioms():
        m = join(m1, m2)
        assert rule_nb(m1, m2, m)
        assert rule_comm(m1, m2, m)
        for bid in (1, 17, 64, 100):
            assert rule_ld(m1, m2, m, bid, 0)
            assert rule_st(m1, m2, m, bid, 0, "x")
        assert rule_alloc(m1, m2, m, 0, 8)
        assert rule_lift_r(m1, m2, m, 4)
        assert rule_lift_l(m1, m2, m, 4)
        return m

    merged = benchmark(check_all_axioms)
    assert check_join(m1, m2, merged)


def test_join_associativity(benchmark):
    """The N-way fold is order-insensitive (the §5.5 generalization)."""
    memories = build_thread_memories(threads=4, frames=8)

    def both_orders():
        left = join(join(join(memories[0], memories[1]), memories[2]),
                    memories[3])
        right = join(memories[0], join(memories[1],
                                       join(memories[2], memories[3])))
        return left, right

    left, right = benchmark(both_orders)
    assert left == right


def test_join_scaling_table(benchmark):
    rows = []
    import time

    for threads in (2, 4, 8):
        memories = build_thread_memories(threads=threads, frames=16)
        start = time.perf_counter()
        merged = join_all(memories)
        elapsed = time.perf_counter() - start
        rows.append([threads, merged.nb(), f"{elapsed * 1000:.2f} ms"])
    benchmark(join_all, build_thread_memories(threads=4, frames=16))
    print_table(
        "Fig. 12 — N-way join scaling",
        ["threads", "blocks", "join time"],
        rows,
    )
