"""Fig. 1: the full concurrent-layer stack, built and exercised.

The paper's overview figure — spinlocks at the bottom, sleep/pending
queues, the thread scheduler, then queuing locks / condition variables /
IPC at the top.  This bench builds the entire tower and drives a
workload through its top (synchronous IPC), reporting per-layer
correctness-check obligations — the "the stack is buildable and every
layer is certified" claim, measured.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.objects.condvar import check_condvar_correctness
from repro.objects.ipc import check_ipc_correctness
from repro.objects.qlock import check_qlock_correctness
from repro.objects.sched import CpuMap
from repro.objects.shared_queue import certify_shared_queue
from repro.objects.ticket_lock import certify_ticket_lock


def build_stack():
    results = {}
    results["spinlock (ticket)"] = certify_ticket_lock(
        [1, 2], lock="q0"
    ).composed.certificate
    results["shared queues"] = certify_shared_queue(
        [1, 2], queue="rdq"
    )["composed"].certificate
    results["queuing lock"] = check_qlock_correctness(
        CpuMap({1: 0, 2: 0, 3: 0}), {0: 1}, lock=5
    )
    results["condition variables"] = check_condvar_correctness(
        CpuMap({1: 0, 2: 0}), {0: 1}, producers={1: 2}, consumers={2: 2},
    )
    results["IPC"] = check_ipc_correctness(
        CpuMap({1: 0, 2: 0}), {0: 1}, senders={1: ["a", "b"]},
        receivers={2: 2},
    )
    return results


def test_fig1_full_stack(benchmark):
    results = benchmark.pedantic(build_stack, rounds=1, iterations=1)
    rows = [
        [layer, cert.obligation_count(), "OK" if cert.ok else "FAILED"]
        for layer, cert in results.items()
    ]
    print_table(
        "Fig. 1 — the concurrent layer stack, bottom to top",
        ["layer", "obligations", "status"],
        rows,
    )
    assert all(cert.ok for cert in results.values())


def test_ipc_throughput_over_stack(benchmark):
    """Messages through the whole tower per second (simulator speed)."""
    from repro.objects.ipc import ipc_recv_impl, ipc_send_impl, ipc_lock
    from repro.objects.qlock import ql_alloc_prim, ql_loc
    from repro.threads.interface import build_lhtd
    from repro.objects.sched import ThreadGameScheduler
    from repro.core.machine import run_game
    from repro.threads.linking import exiting

    cpus = CpuMap({1: 0, 2: 0})
    init = {0: 1}
    interface = build_lhtd(cpus, init, locks=[ql_loc(ipc_lock(3))])
    interface = interface.extend(interface.name, [ql_alloc_prim()])

    def sender(ctx):
        for index in range(4):
            yield from ipc_send_impl(ctx, 3, index)
        return "sent"

    def receiver(ctx):
        got = []
        for _ in range(4):
            message = yield from ipc_recv_impl(ctx, 3)
            got.append(message)
        return got

    def run_once():
        result = run_game(
            interface,
            {1: (exiting(sender), ()), 2: (exiting(receiver), ())},
            ThreadGameScheduler(cpus, init),
            fuel=100_000,
            max_rounds=3_000,
        )
        assert result.ok, result.stuck
        return result

    result = benchmark(run_once)
    assert result.rets[2] == [0, 1, 2, 3]
